// Package poly provides plaintext polynomial machinery for approximating
// the nonlinear functions of neural networks under CKKS: monomial and
// Chebyshev-basis polynomials, Chebyshev interpolation, the Remez exchange
// algorithm for minimax approximation, and the composite sign polynomials
// (Cheon et al. / Lee et al. style) used to realise ReLU homomorphically.
package poly

import (
	"fmt"
	"math"
)

// Basis identifies the representation of a Polynomial's coefficients.
type Basis int

const (
	// Monomial coefficients: p(x) = sum c_i x^i.
	Monomial Basis = iota
	// Chebyshev coefficients over [A,B]: p(x) = sum c_i T_i(u),
	// u = (2x-(A+B))/(B-A).
	Chebyshev
)

// Polynomial is a univariate polynomial in either basis. For the
// Chebyshev basis, A and B give the interpolation interval.
type Polynomial struct {
	Coeffs []float64
	Basis  Basis
	A, B   float64
}

// Degree returns the degree (index of the last nonzero coefficient).
func (p *Polynomial) Degree() int {
	for i := len(p.Coeffs) - 1; i >= 0; i-- {
		if p.Coeffs[i] != 0 {
			return i
		}
	}
	return 0
}

// Depth returns the multiplicative depth needed to evaluate p with a
// BSGS evaluation: ceil(log2(degree+1)).
func (p *Polynomial) Depth() int {
	d := p.Degree()
	depth := 0
	for (1 << depth) < d+1 {
		depth++
	}
	return depth
}

// Eval evaluates p at x in plaintext (reference implementation).
func (p *Polynomial) Eval(x float64) float64 {
	switch p.Basis {
	case Monomial:
		// Horner.
		acc := 0.0
		for i := len(p.Coeffs) - 1; i >= 0; i-- {
			acc = acc*x + p.Coeffs[i]
		}
		return acc
	case Chebyshev:
		u := x
		if p.A != -1 || p.B != 1 {
			u = (2*x - (p.A + p.B)) / (p.B - p.A)
		}
		// Clenshaw recurrence.
		var b1, b2 float64
		for i := len(p.Coeffs) - 1; i >= 1; i-- {
			b1, b2 = 2*u*b1-b2+p.Coeffs[i], b1
		}
		return u*b1 - b2 + p.Coeffs[0]
	}
	panic("poly: unknown basis")
}

// NewMonomial builds a monomial-basis polynomial from coefficients
// (constant first).
func NewMonomial(coeffs ...float64) *Polynomial {
	return &Polynomial{Coeffs: append([]float64(nil), coeffs...), Basis: Monomial, A: -1, B: 1}
}

// ChebyshevInterpolate approximates f on [a,b] with a degree-d polynomial
// in Chebyshev basis using Chebyshev-node interpolation (near-minimax).
func ChebyshevInterpolate(f func(float64) float64, a, b float64, degree int) *Polynomial {
	n := degree + 1
	nodes := make([]float64, n)
	vals := make([]float64, n)
	for k := 0; k < n; k++ {
		u := math.Cos(math.Pi * (float64(k) + 0.5) / float64(n))
		nodes[k] = u
		x := 0.5*(b-a)*u + 0.5*(a+b)
		vals[k] = f(x)
	}
	coeffs := make([]float64, n)
	for j := 0; j < n; j++ {
		sum := 0.0
		for k := 0; k < n; k++ {
			sum += vals[k] * math.Cos(math.Pi*float64(j)*(float64(k)+0.5)/float64(n))
		}
		c := 2 * sum / float64(n)
		if j == 0 {
			c /= 2
		}
		coeffs[j] = c
	}
	return &Polynomial{Coeffs: coeffs, Basis: Chebyshev, A: a, B: b}
}

// MaxError returns the maximum |p(x)-f(x)| over a dense grid on [a,b].
func MaxError(p *Polynomial, f func(float64) float64, a, b float64, samples int) float64 {
	m := 0.0
	for i := 0; i <= samples; i++ {
		x := a + (b-a)*float64(i)/float64(samples)
		if e := math.Abs(p.Eval(x) - f(x)); e > m {
			m = e
		}
	}
	return m
}

// ToMonomial converts a Chebyshev-basis polynomial on [-1,1] to monomial
// basis. Only valid for A=-1, B=1 (use Compose/affine mapping otherwise).
// Numerically safe only for modest degrees (< ~30).
func (p *Polynomial) ToMonomial() (*Polynomial, error) {
	if p.Basis == Monomial {
		return p, nil
	}
	if p.A != -1 || p.B != 1 {
		return nil, fmt.Errorf("poly: ToMonomial requires the interval [-1,1], have [%g,%g]", p.A, p.B)
	}
	n := len(p.Coeffs)
	// T polynomials in monomial basis, built by recurrence.
	tPrev := []float64{1}
	tCur := []float64{0, 1}
	out := make([]float64, n)
	addScaled := func(dst []float64, src []float64, c float64) {
		for i, v := range src {
			dst[i] += c * v
		}
	}
	addScaled(out, tPrev, p.Coeffs[0])
	if n > 1 {
		addScaled(out, tCur, p.Coeffs[1])
	}
	for k := 2; k < n; k++ {
		// T_k = 2x T_{k-1} - T_{k-2}
		tNext := make([]float64, k+1)
		for i, v := range tCur {
			tNext[i+1] += 2 * v
		}
		for i, v := range tPrev {
			tNext[i] -= v
		}
		addScaled(out, tNext, p.Coeffs[k])
		tPrev, tCur = tCur, tNext
	}
	return &Polynomial{Coeffs: out, Basis: Monomial, A: -1, B: 1}, nil
}

// IsOdd reports whether all even-index coefficients are (near) zero.
func (p *Polynomial) IsOdd() bool {
	for i := 0; i < len(p.Coeffs); i += 2 {
		if math.Abs(p.Coeffs[i]) > 1e-12 {
			return false
		}
	}
	return true
}
