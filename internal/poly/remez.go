package poly

import (
	"fmt"
	"math"
)

// Remez computes the degree-d minimax approximation of f on [a,b] by the
// Remez exchange algorithm, returning the polynomial in Chebyshev basis
// and the achieved equioscillation error. It assumes f is continuous;
// convergence is declared when the levelled error stabilises.
func Remez(f func(float64) float64, a, b float64, degree, maxIter int) (*Polynomial, float64, error) {
	n := degree + 2 // number of alternation points
	// Initial reference: Chebyshev extrema mapped to [a,b].
	xs := make([]float64, n)
	for i := 0; i < n; i++ {
		u := math.Cos(math.Pi * float64(i) / float64(n-1))
		xs[i] = 0.5*(b-a)*-u + 0.5*(a+b)
	}
	var coeffs []float64
	var eps float64
	for iter := 0; iter < maxIter; iter++ {
		var err error
		coeffs, eps, err = solveReference(f, xs, degree, a, b)
		if err != nil {
			return nil, 0, err
		}
		p := &Polynomial{Coeffs: coeffs, Basis: Chebyshev, A: a, B: b}
		// Exchange: find local extrema of the error on a dense grid.
		newXs, maxAbs := exchange(p, f, a, b, n)
		if len(newXs) == n {
			xs = newXs
		}
		// Converged when max error matches levelled error.
		if maxAbs <= math.Abs(eps)*(1+1e-9)+1e-15 {
			return p, math.Abs(eps), nil
		}
	}
	return &Polynomial{Coeffs: coeffs, Basis: Chebyshev, A: a, B: b}, math.Abs(eps), nil
}

// solveReference solves the linear system p(x_i) + (-1)^i e = f(x_i) for
// the Chebyshev coefficients of p and the levelled error e.
func solveReference(f func(float64) float64, xs []float64, degree int, a, b float64) ([]float64, float64, error) {
	n := len(xs)
	m := degree + 2
	if n != m {
		return nil, 0, fmt.Errorf("poly: reference size %d != %d", n, m)
	}
	// Unknowns: c_0..c_degree, e.
	A := make([][]float64, n)
	rhs := make([]float64, n)
	for i, x := range xs {
		A[i] = make([]float64, m)
		u := (2*x - (a + b)) / (b - a)
		tPrev, tCur := 1.0, u
		for j := 0; j <= degree; j++ {
			switch j {
			case 0:
				A[i][j] = 1
			case 1:
				A[i][j] = u
			default:
				tNext := 2*u*tCur - tPrev
				tPrev, tCur = tCur, tNext
				A[i][j] = tNext
			}
		}
		sign := 1.0
		if i%2 == 1 {
			sign = -1
		}
		A[i][degree+1] = sign
		rhs[i] = f(x)
	}
	sol, err := solveLinear(A, rhs)
	if err != nil {
		return nil, 0, err
	}
	return sol[:degree+1], sol[degree+1], nil
}

// exchange locates the alternation points of the current error function.
func exchange(p *Polynomial, f func(float64) float64, a, b float64, want int) ([]float64, float64) {
	const grid = 8192
	errAt := func(x float64) float64 { return p.Eval(x) - f(x) }
	// Collect local extrema (including endpoints).
	type ext struct {
		x, e float64
	}
	var exts []ext
	prevX := a
	prevE := errAt(a)
	exts = append(exts, ext{a, prevE})
	rising := true
	_ = rising
	lastE := prevE
	lastX := prevX
	for i := 1; i <= grid; i++ {
		x := a + (b-a)*float64(i)/float64(grid)
		e := errAt(x)
		// Detect sign of slope change via three-point comparison later;
		// simpler: keep running max per sign-region.
		if (e >= 0) != (lastE >= 0) {
			// sign change: the running extremum of the previous region ends
			exts = append(exts, ext{lastX, lastE})
			lastE, lastX = e, x
		} else if math.Abs(e) > math.Abs(lastE) {
			lastE, lastX = e, x
		}
		_ = prevX
	}
	exts = append(exts, ext{lastX, lastE})
	// Deduplicate and keep the largest |e| alternating sequence of length
	// `want`: greedily merge same-sign neighbours keeping the larger.
	var merged []ext
	for _, e := range exts {
		if len(merged) > 0 && (merged[len(merged)-1].e >= 0) == (e.e >= 0) {
			if math.Abs(e.e) > math.Abs(merged[len(merged)-1].e) {
				merged[len(merged)-1] = e
			}
		} else {
			merged = append(merged, e)
		}
	}
	maxAbs := 0.0
	for _, e := range merged {
		if math.Abs(e.e) > maxAbs {
			maxAbs = math.Abs(e.e)
		}
	}
	// Trim to `want` keeping the largest errors at the ends.
	for len(merged) > want {
		if math.Abs(merged[0].e) < math.Abs(merged[len(merged)-1].e) {
			merged = merged[1:]
		} else {
			merged = merged[:len(merged)-1]
		}
	}
	xs := make([]float64, len(merged))
	for i, e := range merged {
		xs[i] = e.x
	}
	return xs, maxAbs
}

// solveLinear solves Ax=b by Gaussian elimination with partial pivoting.
func solveLinear(A [][]float64, b []float64) ([]float64, error) {
	n := len(A)
	M := make([][]float64, n)
	for i := range M {
		M[i] = append(append([]float64(nil), A[i]...), b[i])
	}
	for col := 0; col < n; col++ {
		piv := col
		for r := col + 1; r < n; r++ {
			if math.Abs(M[r][col]) > math.Abs(M[piv][col]) {
				piv = r
			}
		}
		if math.Abs(M[piv][col]) < 1e-300 {
			return nil, fmt.Errorf("poly: singular system at column %d", col)
		}
		M[col], M[piv] = M[piv], M[col]
		for r := col + 1; r < n; r++ {
			factor := M[r][col] / M[col][col]
			for c := col; c <= n; c++ {
				M[r][c] -= factor * M[col][c]
			}
		}
	}
	x := make([]float64, n)
	for r := n - 1; r >= 0; r-- {
		sum := M[r][n]
		for c := r + 1; c < n; c++ {
			sum -= M[r][c] * x[c]
		}
		x[r] = sum / M[r][r]
	}
	return x, nil
}
