package poly

import (
	"fmt"
	"math"
)

// Approximations of the common nonlinear NN operators. Each returns a
// Chebyshev-basis polynomial on the stated interval; the SIHE lowering
// selects degree by the precision/depth budget.

// Exp approximates e^x on [a,b].
func Exp(a, b float64, degree int) *Polynomial {
	return ChebyshevInterpolate(math.Exp, a, b, degree)
}

// Log approximates ln(x) on [a,b], a > 0.
func Log(a, b float64, degree int) (*Polynomial, error) {
	if a <= 0 {
		return nil, fmt.Errorf("poly: log domain must be positive, got [%g,%g]", a, b)
	}
	return ChebyshevInterpolate(math.Log, a, b, degree), nil
}

// Tanh approximates tanh(x) on [a,b].
func Tanh(a, b float64, degree int) *Polynomial {
	return ChebyshevInterpolate(math.Tanh, a, b, degree)
}

// Sigmoid approximates 1/(1+e^-x) on [a,b].
func Sigmoid(a, b float64, degree int) *Polynomial {
	return ChebyshevInterpolate(func(x float64) float64 { return 1 / (1 + math.Exp(-x)) }, a, b, degree)
}

// GELU approximates x*Phi(x) on [a,b].
func GELU(a, b float64, degree int) *Polynomial {
	return ChebyshevInterpolate(func(x float64) float64 {
		return 0.5 * x * (1 + math.Erf(x/math.Sqrt2))
	}, a, b, degree)
}

// InvSqrt approximates 1/sqrt(x) on [a,b], a > 0 (used by softmax and
// normalisation layers).
func InvSqrt(a, b float64, degree int) (*Polynomial, error) {
	if a <= 0 {
		return nil, fmt.Errorf("poly: inv-sqrt domain must be positive, got [%g,%g]", a, b)
	}
	return ChebyshevInterpolate(func(x float64) float64 { return 1 / math.Sqrt(x) }, a, b, degree), nil
}

// SoftplusSmoothReLU approximates ln(1+e^x), a smooth stand-in for ReLU
// usable when a shallow circuit matters more than exactness.
func SoftplusSmoothReLU(a, b float64, degree int) *Polynomial {
	return ChebyshevInterpolate(func(x float64) float64 {
		// Numerically stable softplus.
		if x > 30 {
			return x
		}
		return math.Log1p(math.Exp(x))
	}, a, b, degree)
}
