package poly

import (
	"fmt"
	"math"
)

// Homomorphic ReLU needs sign(x), approximated on [-1,1]\(-eps,eps) by a
// composition of low-degree odd polynomials (Cheon et al., as used by Lee
// et al. [36]). This file builds such compositions without hard-coded
// constants: "accelerator" stages are produced by our own Remez solver
// (an odd minimax sign approximation via q(t) ~ 1/sqrt(t)), and
// "flattening" stages use the closed-form family
//
//	f_n(x) = sum_{i=0}^n (1/4^i) C(2i,i) x (1-x^2)^i,
//
// which maps [-1,1] into [-1,1] and converges to sign under composition.

// binom returns the binomial coefficient C(n,k) as float64.
func binom(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r = r * float64(n-i) / float64(i+1)
	}
	return r
}

// FN returns the degree-(2n+1) flattening polynomial f_n in monomial
// basis.
func FN(n int) *Polynomial {
	coeffs := make([]float64, 2*n+2)
	for i := 0; i <= n; i++ {
		c := binom(2*i, i) / math.Pow(4, float64(i))
		// x(1-x^2)^i = sum_j C(i,j) (-1)^j x^(2j+1)
		for j := 0; j <= i; j++ {
			coeffs[2*j+1] += c * binom(i, j) * math.Pow(-1, float64(j))
		}
	}
	return NewMonomial(coeffs...)
}

// MinimaxSignStage returns an odd polynomial of degree 2*halfDegree+1
// approximating sign on [eps,1] (and by oddness on [-1,-eps]), built as
// x*q(x^2) with q the Remez minimax approximation of 1/sqrt(t) on
// [eps^2, 1].
//
// Caution: inside the gap (|x| < eps) the stage can greatly exceed 1, so
// it must not be composed with polynomials that diverge outside [-1,1]
// unless the caller guarantees no inputs fall in the gap. SignComposite
// therefore uses only the f_n family, which maps [-1,1] into itself.
func MinimaxSignStage(eps float64, halfDegree int) (*Polynomial, error) {
	q, _, err := Remez(func(t float64) float64 { return 1 / math.Sqrt(t) }, eps*eps, 1, halfDegree, 30)
	if err != nil {
		return nil, err
	}
	qm, err := chebToMonomialOn(q)
	if err != nil {
		return nil, err
	}
	// p(x) = x * qm(x^2)
	coeffs := make([]float64, 2*len(qm.Coeffs))
	for i, c := range qm.Coeffs {
		coeffs[2*i+1] = c
	}
	return NewMonomial(coeffs...), nil
}

// chebToMonomialOn converts a Chebyshev polynomial on [a,b] to monomial
// basis by composing with the affine map.
func chebToMonomialOn(p *Polynomial) (*Polynomial, error) {
	if p.Basis == Monomial {
		return p, nil
	}
	unit := &Polynomial{Coeffs: p.Coeffs, Basis: Chebyshev, A: -1, B: 1}
	mono, err := unit.ToMonomial()
	if err != nil {
		return nil, err
	}
	// Substitute u = alpha*x + beta.
	alpha := 2 / (p.B - p.A)
	beta := -(p.A + p.B) / (p.B - p.A)
	return mono.ComposeAffine(alpha, beta), nil
}

// ComposeAffine returns p(alpha*x + beta) in monomial basis.
func (p *Polynomial) ComposeAffine(alpha, beta float64) *Polynomial {
	if p.Basis != Monomial {
		panic("poly: ComposeAffine requires monomial basis")
	}
	n := len(p.Coeffs)
	out := make([]float64, n)
	// Horner on polynomial coefficients: repeatedly multiply by
	// (alpha x + beta) and add the next coefficient.
	cur := make([]float64, 1, n)
	cur[0] = p.Coeffs[n-1]
	for i := n - 2; i >= 0; i-- {
		next := make([]float64, len(cur)+1)
		for j, c := range cur {
			next[j+1] += alpha * c
			next[j] += beta * c
		}
		next[0] += p.Coeffs[i]
		cur = next
	}
	copy(out, cur)
	return &Polynomial{Coeffs: out, Basis: Monomial, A: -1, B: 1}
}

// SignComposite builds a composition approximating sign(x) to within
// 2^-alpha on [-1,1] \ (-eps, eps). The returned stages are applied left
// to right, and every stage maps [-1,1] into itself, so inputs falling
// inside the gap (where the sign is undefined) can never overflow the
// CKKS message bound.
//
// The composition opens with a minimax "accelerator" stage (degree 15,
// normalised so that max |p| <= 1 over the whole of [-1,1]), which
// expands the gap by roughly an order of magnitude in a single stage —
// the depth saving of the minimax composite method of Lee et al. [36]
// relative to pure f_n iteration. f_3 flattening stages follow until a
// dense grid check certifies the target accuracy.
func SignComposite(eps float64, alpha int) ([]*Polynomial, error) {
	if eps <= 0 || eps >= 1 {
		return nil, fmt.Errorf("poly: eps %g out of (0,1)", eps)
	}
	const flattenN = 3 // degree-7 stages: depth 3 each
	fn := FN(flattenN)
	var stages []*Polynomial
	target := math.Exp2(-float64(alpha))
	// Amplify the gap with cheap f_3 stages until it reaches ~0.5.
	cur := eps
	for cur < 0.5 && len(stages) < 32 {
		stages = append(stages, fn)
		cur = fn.Eval(cur)
	}
	// Flatten with safe minimax stages (degree 15): each typically gains
	// 8+ bits in a single depth-4 stage.
	for iter := 0; iter < 8; iter++ {
		if signCompositeError(stages, eps) <= target {
			return stages, nil
		}
		st, newEps, err := safeMinimaxStage(cur)
		if err != nil || newEps <= cur {
			stages = append(stages, fn)
			cur = fn.Eval(cur)
			continue
		}
		stages = append(stages, st)
		cur = newEps
	}
	// Final fallback: keep flattening with f_3.
	for iter := 0; iter < 32; iter++ {
		if signCompositeError(stages, eps) <= target {
			return stages, nil
		}
		stages = append(stages, fn)
	}
	return nil, fmt.Errorf("poly: sign composition did not reach 2^-%d on eps=%g", alpha, eps)
}

// safeMinimaxStage builds a degree-15 minimax sign stage normalised to
// map all of [-1,1] into [-1,1] (checked on a dense grid, including the
// gap), returning the stage and the gap it guarantees.
func safeMinimaxStage(eps float64) (*Polynomial, float64, error) {
	st, err := MinimaxSignStage(eps, 7)
	if err != nil {
		return nil, 0, err
	}
	_, m := rangeOn(st, 0, 1) // odd: max of |p| over [-1,1] = max over [0,1]
	if m > 1 {
		inv := 1 / m
		for i := range st.Coeffs {
			st.Coeffs[i] *= inv
		}
	}
	lo, hi := rangeOn(st, eps, 1)
	if hi > 1+1e-9 {
		return nil, 0, fmt.Errorf("poly: accelerator normalisation failed (hi=%g)", hi)
	}
	if lo <= eps {
		return nil, 0, fmt.Errorf("poly: accelerator did not expand the gap")
	}
	return st, lo, nil
}

// rangeOn returns the min and max of p over [a,b] on a dense grid.
func rangeOn(p *Polynomial, a, b float64) (lo, hi float64) {
	lo, hi = math.Inf(1), math.Inf(-1)
	const grid = 4096
	for i := 0; i <= grid; i++ {
		x := a + (b-a)*float64(i)/float64(grid)
		v := p.Eval(x)
		if v < lo {
			lo = v
		}
		if v > hi {
			hi = v
		}
	}
	return lo, hi
}

// EvalComposite evaluates a stage list at x.
func EvalComposite(stages []*Polynomial, x float64) float64 {
	for _, st := range stages {
		x = st.Eval(x)
	}
	return x
}

// signCompositeError measures max |comp(x) - 1| over [eps, 1] (by
// symmetry this bounds the error on both sides).
func signCompositeError(stages []*Polynomial, eps float64) float64 {
	const grid = 2048
	worst := 0.0
	for i := 0; i <= grid; i++ {
		x := eps + (1-eps)*float64(i)/float64(grid)
		if e := math.Abs(EvalComposite(stages, x) - 1); e > worst {
			worst = e
		}
	}
	return worst
}

// CompositeDepth returns the total multiplicative depth of a stage list.
func CompositeDepth(stages []*Polynomial) int {
	d := 0
	for _, st := range stages {
		d += st.Depth()
	}
	return d
}

// ReLUFromSign returns the multiplicative depth consumed by evaluating
// relu(x) = 0.5*x*(1+sign(x)) given a sign composition: the stages plus
// the final product with x.
func ReLUFromSign(stages []*Polynomial) int {
	return CompositeDepth(stages) + 1
}
