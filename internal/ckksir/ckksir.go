// Package ckksir implements the CKKS IR, where the scheme-independent
// SIHE operations are committed to RNS-CKKS: the pass assigns exact
// levels and scales to every value, inserts rescaling and modulus
// switching, plans minimal-level bootstrapping at the paper's positions
// (before each ReLU), selects the security parameters automatically
// (Table 10), and performs the rotation-key analysis behind the paper's
// memory savings (Figure 7).
package ckksir

import (
	"fmt"
	"math"
	"sort"

	"antace/internal/bootstrap"
	"antace/internal/ckks"
	"antace/internal/ir"
	"antace/internal/sihe"
)

// Op names.
const (
	OpAdd       = "ckks.add"
	OpAddPlain  = "ckks.add_plain"
	OpMulPlain  = "ckks.mul_plain"
	OpMul       = "ckks.mul"
	OpRelin     = "ckks.relin"
	OpRescale   = "ckks.rescale"
	OpRotate    = "ckks.rotate"
	OpModSwitch = "ckks.modswitch"
	OpEncode    = "ckks.encode"
	OpMulConst  = "ckks.mul_const"
	OpPoly      = "ckks.poly"
	OpBootstrap = "ckks.bootstrap"
	// OpReinterpret divides the declared scale by attribute "factor"
	// without touching the data: the plaintext values are multiplied by
	// factor. Free and exact.
	OpReinterpret = "ckks.reinterpret"
)

func init() {
	C := []ir.Kind{ir.KindCipher}
	C3 := []ir.Kind{ir.KindCipher3}
	P := []ir.Kind{ir.KindPlain}
	V := []ir.Kind{ir.KindVector}
	ir.RegisterOp(ir.OpSpec{Name: OpAdd, Args: [][]ir.Kind{C, C}, Result: ir.KindCipher})
	ir.RegisterOp(ir.OpSpec{Name: OpAddPlain, Args: [][]ir.Kind{C, P}, Result: ir.KindCipher})
	ir.RegisterOp(ir.OpSpec{Name: OpMulPlain, Args: [][]ir.Kind{C, P}, Result: ir.KindCipher})
	ir.RegisterOp(ir.OpSpec{Name: OpMul, Args: [][]ir.Kind{C, C}, Result: ir.KindCipher3})
	ir.RegisterOp(ir.OpSpec{Name: OpRelin, Args: [][]ir.Kind{C3}, Result: ir.KindCipher})
	ir.RegisterOp(ir.OpSpec{Name: OpRescale, Args: [][]ir.Kind{{ir.KindCipher, ir.KindCipher3}}, Result: ir.KindInvalid})
	ir.RegisterOp(ir.OpSpec{Name: OpRotate, Args: [][]ir.Kind{C}, Result: ir.KindCipher, RequiredAttrs: []string{"k"}})
	ir.RegisterOp(ir.OpSpec{Name: OpModSwitch, Args: [][]ir.Kind{C}, Result: ir.KindCipher, RequiredAttrs: []string{"down"}})
	ir.RegisterOp(ir.OpSpec{Name: OpEncode, Args: [][]ir.Kind{V}, Result: ir.KindPlain, RequiredAttrs: []string{"level", "scale"}})
	ir.RegisterOp(ir.OpSpec{Name: OpMulConst, Args: [][]ir.Kind{C}, Result: ir.KindCipher, RequiredAttrs: []string{"c", "const_scale"}})
	ir.RegisterOp(ir.OpSpec{Name: OpPoly, Args: [][]ir.Kind{C}, Result: ir.KindCipher, RequiredAttrs: []string{"coeffs", "target"}})
	ir.RegisterOp(ir.OpSpec{Name: OpBootstrap, Args: [][]ir.Kind{C}, Result: ir.KindCipher, RequiredAttrs: []string{"target"}})
	ir.RegisterOp(ir.OpSpec{Name: OpReinterpret, Args: [][]ir.Kind{C}, Result: ir.KindCipher, RequiredAttrs: []string{"factor"}})
}

// BootstrapMode selects the bootstrapping policy.
type BootstrapMode int

const (
	// BootstrapAuto bootstraps when the circuit is deeper than
	// MaxNoBootstrapDepth.
	BootstrapAuto BootstrapMode = iota
	// BootstrapNever sizes the chain for the whole circuit.
	BootstrapNever
	// BootstrapAlways bootstraps before every ReLU.
	BootstrapAlways
)

// Options configures the CKKS lowering.
type Options struct {
	// LogQ0 is the bit size of the output modulus q0 (paper: 60).
	LogQ0 int
	// LogScale is the compute-level scale (paper Table 10: 56; smaller
	// values shrink the chain for test-scale runs).
	LogScale int
	// Mode selects the bootstrapping policy.
	Mode BootstrapMode
	// MaxNoBootstrapDepth is the Auto-mode threshold.
	MaxNoBootstrapDepth int
	// Boot configures the bootstrapping circuit.
	Boot bootstrap.Parameters
	// ExpertSlack adds spare levels to the chain and refreshes to the
	// chain top instead of the minimal level — the Expert baseline's
	// bootstrapping behaviour.
	ExpertSlack int
	// IgnoreSecurity skips the 128-bit security floor on LogN (reduced-
	// scale functional tests only; production compiles must not set it).
	IgnoreSecurity bool
	// ForceLogN overrides the ring degree (0 = automatic).
	ForceLogN int
}

func (o Options) withDefaults() Options {
	if o.LogQ0 == 0 {
		o.LogQ0 = 60
	}
	if o.LogScale == 0 {
		o.LogScale = 40
	}
	if o.MaxNoBootstrapDepth == 0 {
		o.MaxNoBootstrapDepth = 24
	}
	return o
}

// Result carries the lowered module and everything the runtime needs.
type Result struct {
	Module  *ir.Module
	Literal ckks.ParametersLiteral
	// Boot is non-nil when the program contains bootstrap operations.
	Boot *bootstrap.Parameters
	// InputLevel is the level at which the client must encrypt.
	InputLevel int
	// InputScale is the scale at which the client must encode.
	InputScale float64
	// Rotations lists the distinct rotation amounts used by the program
	// (bootstrapping adds its own on top; see the vm package).
	Rotations []int
	// RotationLevels maps each rotation amount to the highest level it is
	// used at: the key generator only needs switching-key digits up to
	// that level (the data-flow key analysis behind Figure 7).
	RotationLevels map[int]int
	// Bootstraps counts bootstrap operations.
	Bootstraps int
	// Depth statistics from planning.
	SegmentDepths []int
	TargetLevel   int
}

// plan simulates the SIHE program and returns the depth of every
// bootstrap segment: segment 0 runs from the input to the first ReLU
// normalisation (inclusive), segment i>0 from bootstrap i's output
// through the next normalisation (or the function end).
func plan(f *ir.Func, boot bool) ([]int, error) {
	depth := map[*ir.Value]int{}
	for _, p := range f.Params {
		depth[p] = 0
	}
	var segments []int
	cur := func(v *ir.Value) int { return depth[v] }
	for _, in := range f.Body {
		switch in.Op {
		case sihe.OpAdd, sihe.OpSub:
			d := cur(in.Args[0])
			if len(in.Args) > 1 && in.Args[1].Type.Kind == ir.KindCipher {
				if d2 := cur(in.Args[1]); d2 > d {
					d = d2
				}
			}
			depth[in.Result] = d
		case sihe.OpRotate, sihe.OpNeg, sihe.OpEncode:
			depth[in.Result] = cur(in.Args[0])
		case sihe.OpMulConst:
			d := cur(in.Args[0]) + 1
			if in.Attr("relu_norm") != nil && boot {
				segments = append(segments, d)
				d = 0
				// The emission redirects the pre-bootstrap ReLU input to
				// the refreshed ciphertext; its depth resets too.
				depth[in.Args[0]] = 0
			}
			depth[in.Result] = d
		case sihe.OpPoly:
			coeffs := in.Attrs["coeffs"].([]float64)
			basis, _ := in.Attrs["basis"].(string)
			depth[in.Result] = cur(in.Args[0]) + sihe.StageDepthInstr(coeffs, basis, in.AttrFloat("a", -1), in.AttrFloat("b", 1))
		case sihe.OpMul:
			d := cur(in.Args[0])
			if in.Args[1].Type.Kind == ir.KindCipher {
				if d2 := cur(in.Args[1]); d2 > d {
					d = d2
				}
			}
			depth[in.Result] = d + 1
		default:
			return nil, fmt.Errorf("ckksir: cannot plan op %q", in.Op)
		}
	}
	segments = append(segments, depth[f.Ret])
	return segments, nil
}

// SelectParameters derives the parameter literal from the planned
// segment depths (the paper's automatic security parameter selection).
func SelectParameters(segments []int, slots int, opts Options) (ckks.ParametersLiteral, int, error) {
	opts = opts.withDefaults()
	target := 0
	for i, d := range segments {
		if i > 0 || len(segments) == 1 {
			if d > target {
				target = d
			}
		}
	}
	// Ensure the first segment fits too: the input level is segments[0],
	// which must not exceed the compute region.
	if segments[0] > target {
		target = segments[0]
	}
	boot := len(segments) > 1
	target += opts.ExpertSlack

	logQ := []int{opts.LogQ0}
	for i := 0; i < target; i++ {
		logQ = append(logQ, opts.LogScale)
	}
	bootDepth := 0
	if boot {
		bp := opts.Boot.WithDefaults()
		bootDepth = bootstrap.CircuitDepth(bp)
		for i := 0; i < bootDepth; i++ {
			logQ = append(logQ, 60)
		}
	}
	lit := ckks.ParametersLiteral{
		LogQ:     logQ,
		LogP:     []int{61, 61},
		LogScale: opts.LogScale,
	}
	logQP := opts.LogQ0 + target*opts.LogScale + bootDepth*60 + 122
	logN := ckks.MinLogN(logQP)
	// Slot requirement: N/2 >= slots.
	minLogN := 1
	for (1 << (minLogN - 1)) < slots {
		minLogN++
	}
	if opts.IgnoreSecurity {
		logN = minLogN
	} else if minLogN > logN {
		logN = minLogN
	}
	if opts.ForceLogN != 0 {
		logN = opts.ForceLogN
	}
	if logN > 17 {
		return lit, 0, fmt.Errorf("ckksir: required LogN %d exceeds the supported maximum 17 (logQP=%d)", logN, logQP)
	}
	lit.LogN = logN
	return lit, target, nil
}

// Lower converts a SIHE module into a CKKS module with exact level and
// scale assignment.
func Lower(sm *ir.Module, opts Options) (*Result, error) {
	opts = opts.withDefaults()
	src := sm.Main()
	if src == nil {
		return nil, fmt.Errorf("ckksir: empty module")
	}
	slots := src.Params[0].Type.Len()

	// Decide bootstrapping policy from a no-bootstrap plan.
	flat, err := plan(src, false)
	if err != nil {
		return nil, err
	}
	totalDepth := flat[0]
	useBoot := false
	switch opts.Mode {
	case BootstrapNever:
	case BootstrapAlways:
		useBoot = true
	case BootstrapAuto:
		useBoot = totalDepth > opts.MaxNoBootstrapDepth
	}
	segments, err := plan(src, useBoot)
	if err != nil {
		return nil, err
	}
	if len(segments) == 1 {
		useBoot = false
	}

	lit, target, err := SelectParameters(segments, slots, opts)
	if err != nil {
		return nil, err
	}
	qPrimes, _, err := ckks.GeneratePrimes(lit)
	if err != nil {
		return nil, err
	}

	st := &lowerState{
		opts:    opts,
		q:       qPrimes,
		scale:   math.Exp2(float64(lit.LogScale)),
		target:  target,
		useBoot: useBoot,
	}
	if useBoot {
		bp := opts.Boot.WithDefaults()
		st.bootDepth = bootstrap.CircuitDepth(bp)
		st.boot = &bp
	}
	mod, err := st.emit(sm, src)
	if err != nil {
		return nil, err
	}
	res := &Result{
		Module:         mod,
		Literal:        lit,
		Boot:           st.boot,
		InputLevel:     segments[0],
		InputScale:     st.scale,
		Rotations:      st.rotationList(),
		RotationLevels: st.rotationLevels,
		Bootstraps:     st.bootstraps,
		SegmentDepths:  segments,
		TargetLevel:    target,
	}
	mod.Attrs["ckks.input_level"] = res.InputLevel
	mod.Attrs["ckks.input_scale"] = res.InputScale
	return res, nil
}

type lowerState struct {
	opts      Options
	q         []uint64
	scale     float64
	target    int
	useBoot   bool
	boot      *bootstrap.Parameters
	bootDepth int

	rotations      map[int]bool
	rotationLevels map[int]int
	bootstraps     int
}

func (st *lowerState) rotationList() []int {
	out := make([]int, 0, len(st.rotations))
	for k := range st.rotations {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// emit walks the SIHE body and produces the CKKS function.
func (st *lowerState) emit(sm *ir.Module, src *ir.Func) (*ir.Module, error) {
	st.rotations = map[int]bool{}
	st.rotationLevels = map[int]int{}
	mod := ir.NewModule(sm.Name)
	for k, v := range sm.Attrs {
		mod.Attrs[k] = v
	}
	f := mod.NewFunc(src.Name)
	n := src.Params[0].Type.Len()
	ct := ir.CipherType(n)
	c3t := ir.Type{Kind: ir.KindCipher3, Shape: []int{n}}
	pt := ir.PlainType(n)
	vt := ir.VectorType(n)

	inLevel := 0
	// The input level is the first segment's depth; recompute.
	segs, err := plan(src, st.useBoot)
	if err != nil {
		return nil, err
	}
	inLevel = segs[0]
	if st.opts.ExpertSlack > 0 {
		inLevel = st.target // experts encrypt at the top of the chain
	}

	param := f.NewParam(src.Params[0].Name, ct)
	param.Level = inLevel
	param.Scale = st.scale
	vals := map[*ir.Value]*ir.Value{src.Params[0]: param}

	// vectorConst resolves a SIHE plain value back to its vector payload.
	vectorConst := func(v *ir.Value) ([]float64, error) {
		if v.Def == nil || v.Def.Op != sihe.OpEncode {
			return nil, fmt.Errorf("ckksir: plain value %s is not an encode result", v)
		}
		c, ok := v.Def.Args[0].Const.([]float64)
		if !ok {
			return nil, fmt.Errorf("ckksir: encode argument is not a vector constant")
		}
		return c, nil
	}
	encodeAt := func(vec []float64, name string, level int, scale float64) *ir.Value {
		cv := f.NewConst(name, vt, vec)
		p := f.Emit(OpEncode, pt, []*ir.Value{cv}, map[string]any{"level": level, "scale": scale})
		p.Level = level
		p.Scale = scale
		return p
	}
	rescale := func(x *ir.Value, exactScale float64) *ir.Value {
		out := f.Emit(OpRescale, x.Type, []*ir.Value{x}, nil)
		out.Level = x.Level - 1
		out.Scale = exactScale
		return out
	}
	drop := func(x *ir.Value, to int) *ir.Value {
		if x.Level == to {
			return x
		}
		if x.Level < to {
			panic("ckksir: drop below current level")
		}
		out := f.Emit(OpModSwitch, ct, []*ir.Value{x}, map[string]any{"down": x.Level - to})
		out.Level = to
		out.Scale = x.Scale
		return out
	}
	qAt := func(level int) float64 {
		if level < 0 || level >= len(st.q) {
			panic(fmt.Sprintf("ckksir: level %d outside chain of %d", level, len(st.q)))
		}
		return float64(st.q[level])
	}

	for _, in := range src.Body {
		a := vals[in.Args[0]]
		if in.Args[0].Type.Kind == ir.KindCipher && a == nil {
			return nil, fmt.Errorf("ckksir: %s input not lowered", in.Op)
		}
		switch in.Op {
		case sihe.OpAdd, sihe.OpSub:
			if in.Op == sihe.OpSub {
				return nil, fmt.Errorf("ckksir: sihe.sub not produced by the current pipeline")
			}
			b := in.Args[1]
			if b.Type.Kind == ir.KindPlain {
				vec, err := vectorConst(b)
				if err != nil {
					return nil, err
				}
				p := encodeAt(vec, b.Name, a.Level, a.Scale)
				out := f.Emit(OpAddPlain, ct, []*ir.Value{a, p}, nil)
				out.Level, out.Scale = a.Level, a.Scale
				vals[in.Result] = out
				continue
			}
			bb := vals[b]
			if bb == nil {
				return nil, fmt.Errorf("ckksir: add operand not lowered")
			}
			level := min(a.Level, bb.Level)
			aa := drop(a, level)
			bb = drop(bb, level)
			if rel := math.Abs(aa.Scale/bb.Scale - 1); rel > 1e-9 {
				return nil, fmt.Errorf("ckksir: internal scale mismatch at add: %g vs %g", aa.Scale, bb.Scale)
			}
			out := f.Emit(OpAdd, ct, []*ir.Value{aa, bb}, nil)
			out.Level, out.Scale = level, aa.Scale
			vals[in.Result] = out

		case sihe.OpMul:
			b := in.Args[1]
			if b.Type.Kind == ir.KindPlain {
				// Ciphertext x plaintext: encode so the rescale lands
				// exactly on the waterline scale.
				vec, err := vectorConst(b)
				if err != nil {
					return nil, err
				}
				ptScale := st.scale * qAt(a.Level) / a.Scale
				p := encodeAt(vec, b.Name, a.Level, ptScale)
				prod := f.Emit(OpMulPlain, ct, []*ir.Value{a, p}, nil)
				prod.Level, prod.Scale = a.Level, a.Scale*ptScale
				vals[in.Result] = rescale(prod, st.scale)
				continue
			}
			// Ciphertext x ciphertext (the ReLU final product).
			h := vals[b]
			if h == nil {
				return nil, fmt.Errorf("ckksir: mul operand not lowered")
			}
			level := min(a.Level, h.Level)
			aa := drop(a, level)
			hh := drop(h, level)
			prod := f.Emit(OpMul, c3t, []*ir.Value{aa, hh}, nil)
			prod.Level, prod.Scale = level, aa.Scale*hh.Scale
			rl := f.Emit(OpRelin, ct, []*ir.Value{prod}, nil)
			rl.Level, rl.Scale = level, prod.Scale
			out := rescale(rl, prod.Scale/qAt(level))
			// The ReLU path coordinates h's target so this is exactly the
			// waterline; assert.
			if in.Attr("relu_final") != nil {
				if rel := math.Abs(out.Scale/st.scale - 1); rel > 1e-9 {
					return nil, fmt.Errorf("ckksir: relu product scale %g missed the waterline %g", out.Scale, st.scale)
				}
				out.Scale = st.scale
			}
			vals[in.Result] = out

		case sihe.OpNeg:
			out := f.Emit(OpMulConst, ct, []*ir.Value{a}, map[string]any{"c": -1.0, "const_scale": 1.0})
			out.Level, out.Scale = a.Level, a.Scale
			vals[in.Result] = out

		case sihe.OpRotate:
			k := in.AttrInt("k", 0)
			st.rotations[k] = true
			if a.Level > st.rotationLevels[k] {
				st.rotationLevels[k] = a.Level
			}
			out := f.Emit(OpRotate, ct, []*ir.Value{a}, map[string]any{"k": k})
			out.Level, out.Scale = a.Level, a.Scale
			vals[in.Result] = out

		case sihe.OpEncode:
			// Encodes are materialised at their use sites.
			vals[in.Result] = nil

		case sihe.OpMulConst:
			c := in.AttrFloat("c", 1)
			isNorm := in.Attr("relu_norm") != nil
			cs := st.scale * qAt(a.Level) / a.Scale
			out := f.Emit(OpMulConst, ct, []*ir.Value{a}, map[string]any{"c": c, "const_scale": cs})
			out.Level, out.Scale = a.Level, a.Scale*cs
			out = rescale(out, st.scale)
			if isNorm && st.useBoot {
				out = drop(out, 0)
				bt := f.Emit(OpBootstrap, ct, []*ir.Value{out}, map[string]any{"target": st.target})
				bt.Level, bt.Scale = st.target, st.scale
				st.bootstraps++
				// Reconstruct x = y*bound for the final product, for free.
				bound := in.AttrFloat("bound", 0)
				if bound > 0 {
					xr := f.Emit(OpReinterpret, ct, []*ir.Value{bt}, map[string]any{"factor": bound})
					xr.Level, xr.Scale = bt.Level, bt.Scale/bound
					// Redirect later uses of the pre-bootstrap x.
					vals[in.Args[0]] = xr
				}
				out = bt
			}
			vals[in.Result] = out

		case sihe.OpPoly:
			coeffs := in.Attrs["coeffs"].([]float64)
			basis, _ := in.Attrs["basis"].(string)
			pa, pb := in.AttrFloat("a", -1), in.AttrFloat("b", 1)
			depth := sihe.StageDepthInstr(coeffs, basis, pa, pb)
			outLevel := a.Level - depth
			if outLevel < 0 {
				return nil, fmt.Errorf("ckksir: level underflow in polynomial stage (have %d, need %d)", a.Level, depth)
			}
			target := st.scale
			if in.Attr("relu_last") != nil {
				// Coordinate with the final product: after the product at
				// outLevel rescales, it must land exactly on the
				// waterline.
				xVal := st.findReluInput(src, in, vals)
				if xVal != nil {
					target = st.scale * qAt(outLevel) / xVal.Scale
				}
			}
			attrs := map[string]any{"coeffs": coeffs, "target": target}
			if basis == "cheb" {
				attrs["basis"], attrs["a"], attrs["b"] = "cheb", pa, pb
			}
			out := f.Emit(OpPoly, ct, []*ir.Value{a}, attrs)
			out.Level, out.Scale = outLevel, target
			vals[in.Result] = out

		default:
			return nil, fmt.Errorf("ckksir: cannot lower %q", in.Op)
		}
	}
	ret := vals[src.Ret]
	if ret == nil {
		return nil, fmt.Errorf("ckksir: return value not lowered")
	}
	f.Ret = ret
	if err := ir.VerifyFunc(f); err != nil {
		return nil, err
	}
	return mod, nil
}

// findReluInput locates the x operand of the relu_final product that
// consumes this last polynomial stage, returning its lowered value (the
// post-bootstrap reinterpretation when present).
func (st *lowerState) findReluInput(src *ir.Func, stage *ir.Instr, vals map[*ir.Value]*ir.Value) *ir.Value {
	for _, in := range src.Body {
		if in.Attr("relu_final") == nil {
			continue
		}
		if in.Args[1] == stage.Result {
			return vals[in.Args[0]]
		}
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// PlanDebug exposes the segment planner for diagnostics and tests.
func PlanDebug(f *ir.Func, boot bool) ([]int, error) { return plan(f, boot) }
