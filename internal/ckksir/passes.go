package ckksir

import (
	"math"

	"antace/internal/ir"
)

// LazyRescale hoists rescales out of addition trees: add(rescale(u),
// rescale(v)) becomes rescale(add(u, v)) whenever u and v agree on level
// and scale. On a convolution that sums R rotated/masked products this
// removes R-1 of the R rescales — the paper's "Rescaling Placement"
// optimisation (EVA-style waterline management). Exactness is preserved:
// the tracked levels and scales of all surviving values are unchanged.
func LazyRescale() ir.Pass {
	return ir.FuncPass{PassName: "ckks-lazy-rescale", PassLevel: "CKKS", Fn: func(f *ir.Func) error {
		for iter := 0; iter < 64; iter++ {
			if !lazyRescaleOnce(f) {
				break
			}
		}
		return nil
	}}
}

func lazyRescaleOnce(f *ir.Func) bool {
	uses := map[*ir.Value]int{}
	for _, in := range f.Body {
		for _, a := range in.Args {
			uses[a]++
		}
	}
	if f.Ret != nil {
		uses[f.Ret]++
	}
	changed := false
	var body []*ir.Instr
	for _, in := range f.Body {
		// rotate(rescale(u)) -> rescale(rotate(u)): rotation commutes
		// with rescaling, exposing the add-level merge below.
		if in.Op == OpRotate {
			a := in.Args[0]
			if a.Def != nil && a.Def.Op == OpRescale && uses[a] == 1 && a.Type.Kind == ir.KindCipher {
				u := a.Def.Args[0]
				tmp := f.NewValue("", in.Result.Type)
				tmp.Level, tmp.Scale = u.Level, u.Scale
				rotIn := &ir.Instr{Op: OpRotate, Args: []*ir.Value{u}, Attrs: in.Attrs, Result: tmp}
				tmp.Def = rotIn
				rsIn := &ir.Instr{Op: OpRescale, Args: []*ir.Value{tmp}, Result: in.Result}
				in.Result.Def = rsIn
				body = append(body, rotIn, rsIn)
				changed = true
				continue
			}
		}
		if in.Op != OpAdd {
			body = append(body, in)
			continue
		}
		a, b := in.Args[0], in.Args[1]
		if a.Def == nil || b.Def == nil || a.Def.Op != OpRescale || b.Def.Op != OpRescale ||
			uses[a] != 1 || uses[b] != 1 {
			body = append(body, in)
			continue
		}
		u, v := a.Def.Args[0], b.Def.Args[0]
		if u.Type.Kind != ir.KindCipher || v.Type.Kind != ir.KindCipher {
			body = append(body, in)
			continue
		}
		if u.Level != v.Level || math.Abs(u.Scale/v.Scale-1) > 1e-9 {
			body = append(body, in)
			continue
		}
		// tmp = add(u, v) at the pre-rescale state; the original result
		// becomes the rescale of tmp (level and scale unchanged).
		tmp := f.NewValue("", in.Result.Type)
		tmp.Level, tmp.Scale = u.Level, u.Scale
		addIn := &ir.Instr{Op: OpAdd, Args: []*ir.Value{u, v}, Result: tmp}
		tmp.Def = addIn
		rsIn := &ir.Instr{Op: OpRescale, Args: []*ir.Value{tmp}, Result: in.Result}
		in.Result.Def = rsIn
		body = append(body, addIn, rsIn)
		changed = true
	}
	f.Body = body
	return changed
}

// CountOps returns a histogram of op mnemonics with the total "level
// weight" (sum over instructions of level+1, a proxy for RNS work).
func CountOps(f *ir.Func) (count map[string]int, levelWeight map[string]int) {
	count = map[string]int{}
	levelWeight = map[string]int{}
	for _, in := range f.Body {
		count[in.Op]++
		levelWeight[in.Op] += in.Result.Level + 1
	}
	return count, levelWeight
}
