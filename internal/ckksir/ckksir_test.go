package ckksir

import (
	"math"
	"testing"

	"antace/internal/ir"
	"antace/internal/nnir"
	"antace/internal/onnx"
	"antace/internal/sihe"
	"antace/internal/vecir"
)

func lowerToSIHE(t *testing.T, m *onnx.Model) *ir.Module {
	t.Helper()
	nn, err := nnir.Import(m)
	if err != nil {
		t.Fatal(err)
	}
	pm := &ir.PassManager{}
	pm.Add(nnir.FuseConvBatchNorm(), ir.DCE())
	if err := pm.Run(nn); err != nil {
		t.Fatal(err)
	}
	if err := nnir.CalibrateReLUBounds(nn.Main(), 2, 1.5, 7); err != nil {
		t.Fatal(err)
	}
	vres, err := vecir.Lower(nn, vecir.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := sihe.Lower(vres.Module, sihe.Options{ReLUAlpha: 5, ReLUEps: 0.125})
	if err != nil {
		t.Fatal(err)
	}
	return sm
}

func TestLowerLinearScalesExact(t *testing.T) {
	m, _ := onnx.BuildLinear(16, 4, 3)
	sm := lowerToSIHE(t, m)
	res, err := Lower(sm, Options{Mode: BootstrapNever, IgnoreSecurity: true})
	if err != nil {
		t.Fatal(err)
	}
	f := res.Module.Main()
	// Every cipher value must carry positive scale and non-negative level.
	for _, in := range f.Body {
		if in.Result.Type.Kind == ir.KindCipher {
			if in.Result.Level < 0 {
				t.Fatalf("%s: negative level", in.Op)
			}
			if in.Result.Scale <= 0 {
				t.Fatalf("%s: non-positive scale", in.Op)
			}
		}
	}
	// A linear model consumes exactly one level (the FC mul+rescale).
	if res.InputLevel != 1 {
		t.Fatalf("input level %d, want 1", res.InputLevel)
	}
	if res.Bootstraps != 0 {
		t.Fatal("linear model must not bootstrap")
	}
	// Final value back on the waterline scale.
	if rel := math.Abs(f.Ret.Scale/res.InputScale - 1); rel > 1e-9 {
		t.Fatalf("output scale %g vs waterline %g", f.Ret.Scale, res.InputScale)
	}
}

func TestLowerCNNWithBootstrapPlacement(t *testing.T) {
	m, _ := onnx.BuildSmallCNN(onnx.SmallCNNConfig{InputSize: 8, Channels: 2, Classes: 3})
	sm := lowerToSIHE(t, m)
	res, err := Lower(sm, Options{Mode: BootstrapAlways, IgnoreSecurity: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bootstraps != 2 {
		t.Fatalf("bootstraps %d, want 2 (one per ReLU)", res.Bootstraps)
	}
	// All segments beyond the first must fit the uniform target.
	for i, d := range res.SegmentDepths {
		if i > 0 && d > res.TargetLevel {
			t.Fatalf("segment %d depth %d exceeds target %d", i, d, res.TargetLevel)
		}
	}
	// Chain layout: q0 + target compute levels + circuit levels.
	if len(res.Literal.LogQ) != 1+res.TargetLevel+12 {
		t.Fatalf("chain length %d, want %d", len(res.Literal.LogQ), 1+res.TargetLevel+12)
	}
	// Bootstrap ops must sit at level 0 inputs and target outputs.
	for _, in := range res.Module.Main().Body {
		if in.Op == OpBootstrap {
			if in.Args[0].Level != 0 {
				t.Fatal("bootstrap input not at level 0")
			}
			if in.Result.Level != res.TargetLevel {
				t.Fatal("bootstrap output not at the planned target")
			}
		}
	}
}

func TestAutoModeSwitches(t *testing.T) {
	m, _ := onnx.BuildLinear(16, 4, 3)
	sm := lowerToSIHE(t, m)
	res, err := Lower(sm, Options{Mode: BootstrapAuto, IgnoreSecurity: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.Bootstraps != 0 {
		t.Fatal("shallow circuit must not bootstrap in Auto mode")
	}

	mc, _ := onnx.BuildSmallCNN(onnx.SmallCNNConfig{InputSize: 8, Channels: 2, Classes: 3})
	smc := lowerToSIHE(t, mc)
	res2, err := Lower(smc, Options{Mode: BootstrapAuto, MaxNoBootstrapDepth: 10, IgnoreSecurity: true})
	if err != nil {
		t.Fatal(err)
	}
	if res2.Bootstraps == 0 {
		t.Fatal("deep circuit must bootstrap in Auto mode")
	}
}

func TestSelectParametersSecurity(t *testing.T) {
	// Deep chain without IgnoreSecurity must push LogN up.
	lit, _, err := SelectParameters([]int{20, 20}, 16384, Options{LogScale: 56})
	if err != nil {
		t.Fatal(err)
	}
	if lit.LogN < 16 {
		t.Fatalf("LogN %d too small for a %d-level chain", lit.LogN, len(lit.LogQ))
	}
	// Slot requirement dominates when security is ignored.
	lit2, _, err := SelectParameters([]int{2}, 4096, Options{IgnoreSecurity: true})
	if err != nil {
		t.Fatal(err)
	}
	if 1<<(lit2.LogN-1) < 4096 {
		t.Fatalf("LogN %d cannot hold 4096 slots", lit2.LogN)
	}
}

func TestExpertSlackRaisesChain(t *testing.T) {
	m, _ := onnx.BuildSmallCNN(onnx.SmallCNNConfig{InputSize: 8, Channels: 2, Classes: 3})
	sm := lowerToSIHE(t, m)
	ace, err := Lower(sm, Options{Mode: BootstrapAlways, IgnoreSecurity: true})
	if err != nil {
		t.Fatal(err)
	}
	sm2 := lowerToSIHE(t, m)
	expert, err := Lower(sm2, Options{Mode: BootstrapAlways, IgnoreSecurity: true, ExpertSlack: 3})
	if err != nil {
		t.Fatal(err)
	}
	if expert.TargetLevel != ace.TargetLevel+3 {
		t.Fatalf("expert target %d, ace %d", expert.TargetLevel, ace.TargetLevel)
	}
	if len(expert.Literal.LogQ) <= len(ace.Literal.LogQ) {
		t.Fatal("expert chain not longer")
	}
}

func TestLazyRescaleReducesRescales(t *testing.T) {
	m, _ := onnx.BuildLinear(32, 8, 5)
	sm := lowerToSIHE(t, m)
	res, err := Lower(sm, Options{Mode: BootstrapNever, IgnoreSecurity: true})
	if err != nil {
		t.Fatal(err)
	}
	before, _ := CountOps(res.Module.Main())
	pm := &ir.PassManager{}
	pm.Add(LazyRescale(), ir.DCE())
	if err := pm.Run(res.Module); err != nil {
		t.Fatal(err)
	}
	after, _ := CountOps(res.Module.Main())
	if after[OpRescale] >= before[OpRescale] {
		t.Fatalf("lazy rescale did not reduce rescales: %d -> %d", before[OpRescale], after[OpRescale])
	}
	if err := ir.VerifyFunc(res.Module.Main()); err != nil {
		t.Fatal(err)
	}
	// Levels and scales of the output are unchanged.
	if res.Module.Main().Ret.Level < 0 {
		t.Fatal("broken output level")
	}
}

func TestRotationAnalysis(t *testing.T) {
	m, _ := onnx.BuildSmallCNN(onnx.SmallCNNConfig{InputSize: 8, Channels: 2, Classes: 3})
	sm := lowerToSIHE(t, m)
	res, err := Lower(sm, Options{Mode: BootstrapNever, IgnoreSecurity: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rotations) == 0 {
		t.Fatal("no rotations recorded")
	}
	seen := map[int]bool{}
	for _, k := range res.Rotations {
		if seen[k] {
			t.Fatal("duplicate rotation in analysis")
		}
		seen[k] = true
	}
	// Every rotate instruction must be covered.
	for _, in := range res.Module.Main().Body {
		if in.Op == OpRotate && !seen[in.AttrInt("k", 0)] {
			t.Fatalf("rotation %d missing from analysis", in.AttrInt("k", 0))
		}
	}
}
