package train

import (
	"math"
	"testing"

	"antace/internal/dataset"
	"antace/internal/nnir"
	"antace/internal/onnx"
	"antace/internal/tensor"
)

func TestGradientCheck(t *testing.T) {
	// Finite-difference check of the full backward pass on a tiny model.
	cfg := Config{InputSize: 4, Channels: 2, Classes: 3, Seed: 5}
	m := NewModel(cfg)
	x := tensor.New(1, 1, 4, 4)
	for i := range x.Data {
		x.Data[i] = math.Sin(float64(i))
	}
	label := 1
	g := m.zeroGrads()
	if _, err := m.backward(x, label, g); err != nil {
		t.Fatal(err)
	}
	lossAt := func() float64 {
		st, err := m.forward(x)
		if err != nil {
			t.Fatal(err)
		}
		probs := tensor.Softmax(st.logits)
		return -math.Log(math.Max(probs.Data[label], 1e-12))
	}
	const eps = 1e-5
	check := func(name string, w, gw *tensor.Tensor, idx int) {
		orig := w.Data[idx]
		w.Data[idx] = orig + eps
		up := lossAt()
		w.Data[idx] = orig - eps
		down := lossAt()
		w.Data[idx] = orig
		numeric := (up - down) / (2 * eps)
		if math.Abs(numeric-gw.Data[idx]) > 1e-4*(1+math.Abs(numeric)) {
			t.Errorf("%s[%d]: analytic %g vs numeric %g", name, idx, gw.Data[idx], numeric)
		}
	}
	check("W1", m.W1, g.w1, 0)
	check("W1", m.W1, g.w1, 7)
	check("B1", m.B1, g.b1, 1)
	check("W2", m.W2, g.w2, 3)
	check("B2", m.B2, g.b2, 0)
	check("WF", m.WF, g.wf, 2)
	check("BF", m.BF, g.bf, 1)
}

func TestTrainingLearns(t *testing.T) {
	ds, err := dataset.New(dataset.Config{Classes: 4, Size: 8, Seed: 2, NoiseSigma: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	cfg := Config{InputSize: 8, Channels: 8, Classes: 4, Epochs: 12, BatchesPerEpoch: 40, LearningRate: 0.1, Seed: 2}
	m := NewModel(cfg)
	before, err := m.Accuracy(ds, 200, 999)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Train(ds); err != nil {
		t.Fatal(err)
	}
	after, err := m.Accuracy(ds, 200, 999)
	if err != nil {
		t.Fatal(err)
	}
	t.Logf("accuracy before %.2f after %.2f", before, after)
	if after < 0.7 {
		t.Fatalf("trained accuracy %.2f below 0.7", after)
	}
	if after <= before+0.1 {
		t.Fatalf("training did not improve accuracy (%.2f -> %.2f)", before, after)
	}
}

func TestWeightsExportMatchesONNXModel(t *testing.T) {
	ds, _ := dataset.New(dataset.Config{Classes: 4, Size: 8, Seed: 2})
	cfg := Config{InputSize: 8, Channels: 4, Classes: 4, Epochs: 2, BatchesPerEpoch: 10, Seed: 2}
	m := NewModel(cfg)
	if _, err := m.Train(ds); err != nil {
		t.Fatal(err)
	}
	model, err := onnx.BuildSmallCNN(onnx.SmallCNNConfig{
		InputSize: 8, InputChannels: 1, Channels: 4, Classes: 4, Weights: m.Weights(),
	})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := nnir.Import(model)
	if err != nil {
		t.Fatal(err)
	}
	// The imported ONNX graph must agree with the trainer's own forward.
	samples := ds.Batch(20, 123)
	for _, s := range samples {
		want, err := m.forward(s.Image)
		if err != nil {
			t.Fatal(err)
		}
		got, err := nnir.Run(mod.Main(), map[string]*tensor.Tensor{"image": s.Image})
		if err != nil {
			t.Fatal(err)
		}
		for i := range got.Data {
			if math.Abs(got.Data[i]-want.logits.Data[i]) > 1e-4 {
				t.Fatalf("logit %d: onnx %g vs trainer %g", i, got.Data[i], want.logits.Data[i])
			}
		}
	}
}

func TestDatasetProperties(t *testing.T) {
	ds, err := dataset.New(dataset.Config{Classes: 3, Size: 8, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := dataset.New(dataset.Config{Classes: 1}); err == nil {
		t.Fatal("expected error for single class")
	}
	b1 := ds.Batch(50, 1)
	b2 := ds.Batch(50, 1)
	// Determinism.
	for i := range b1 {
		if b1[i].Label != b2[i].Label {
			t.Fatal("batches not deterministic")
		}
		for j := range b1[i].Image.Data {
			if b1[i].Image.Data[j] != b2[i].Image.Data[j] {
				t.Fatal("batch images not deterministic")
			}
		}
	}
	// Label coverage.
	seen := map[int]bool{}
	for _, s := range ds.Batch(200, 5) {
		if s.Label < 0 || s.Label >= 3 {
			t.Fatal("label out of range")
		}
		seen[s.Label] = true
	}
	if len(seen) != 3 {
		t.Fatal("not all classes sampled")
	}
}
