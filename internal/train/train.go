// Package train implements a small pure-Go SGD trainer (hand-derived
// backpropagation) for the compact CNN of the accuracy experiments:
// conv3x3 → ReLU → avgpool2 → conv3x3 → ReLU → global average pool → FC,
// with cross-entropy loss. Trained weights feed onnx.BuildSmallCNN, so
// Table 11 measures a genuinely trained model rather than random
// weights.
package train

import (
	"fmt"
	"math"
	"math/rand/v2"

	"antace/internal/dataset"
	"antace/internal/tensor"
)

// Config describes the model and optimisation.
type Config struct {
	InputSize       int
	InputChannels   int
	Channels        int // first conv width; second conv uses 2x
	Classes         int
	LearningRate    float64
	Epochs          int
	BatchesPerEpoch int
	BatchSize       int
	Seed            uint64
}

func (c Config) withDefaults() Config {
	if c.InputSize == 0 {
		c.InputSize = 8
	}
	if c.InputChannels == 0 {
		c.InputChannels = 1
	}
	if c.Channels == 0 {
		c.Channels = 4
	}
	if c.Classes == 0 {
		c.Classes = 4
	}
	if c.LearningRate == 0 {
		c.LearningRate = 0.05
	}
	if c.Epochs == 0 {
		c.Epochs = 8
	}
	if c.BatchesPerEpoch == 0 {
		c.BatchesPerEpoch = 40
	}
	if c.BatchSize == 0 {
		c.BatchSize = 16
	}
	if c.Seed == 0 {
		c.Seed = 3
	}
	return c
}

// Model holds the learnable parameters.
type Model struct {
	cfg Config
	// conv1: (C1, Cin, 3, 3) + bias; conv2: (C2, C1, 3, 3) + bias;
	// fc: (K, C2) + bias.
	W1, B1, W2, B2, WF, BF *tensor.Tensor
}

// NewModel initialises a model with He-style weights.
func NewModel(cfg Config) *Model {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewPCG(cfg.Seed, 0x7EA1))
	c1 := cfg.Channels
	c2 := 2 * cfg.Channels
	he := func(t *tensor.Tensor, fanIn int) {
		std := math.Sqrt(2 / float64(fanIn))
		for i := range t.Data {
			t.Data[i] = rng.NormFloat64() * std
		}
	}
	m := &Model{
		cfg: cfg,
		W1:  tensor.New(c1, cfg.InputChannels, 3, 3),
		B1:  tensor.New(c1),
		W2:  tensor.New(c2, c1, 3, 3),
		B2:  tensor.New(c2),
		WF:  tensor.New(cfg.Classes, c2),
		BF:  tensor.New(cfg.Classes),
	}
	he(m.W1, cfg.InputChannels*9)
	he(m.W2, c1*9)
	he(m.WF, c2)
	return m
}

// forwardState caches activations for backprop.
type forwardState struct {
	x, a1, r1, p1, a2, r2, g, logits *tensor.Tensor
}

// forward runs the network on one image (1,Cin,S,S).
func (m *Model) forward(x *tensor.Tensor) (*forwardState, error) {
	st := &forwardState{x: x}
	var err error
	if st.a1, err = tensor.Conv2D(x, m.W1, m.B1, 1, 1); err != nil {
		return nil, err
	}
	st.r1 = tensor.ReLU(st.a1)
	if st.p1, err = tensor.AveragePool2D(st.r1, 2, 2); err != nil {
		return nil, err
	}
	if st.a2, err = tensor.Conv2D(st.p1, m.W2, m.B2, 1, 1); err != nil {
		return nil, err
	}
	st.r2 = tensor.ReLU(st.a2)
	if st.g, err = tensor.GlobalAveragePool2D(st.r2); err != nil {
		return nil, err
	}
	flat := st.g.Flatten()
	if st.logits, err = tensor.Gemm(flat, transpose(m.WF), m.BF, 1, 1); err != nil {
		return nil, err
	}
	return st, nil
}

// Predict returns the argmax class for one image.
func (m *Model) Predict(x *tensor.Tensor) (int, error) {
	st, err := m.forward(x)
	if err != nil {
		return 0, err
	}
	return tensor.ArgMax(st.logits), nil
}

// Train runs SGD on the dataset and returns the final training loss.
func (m *Model) Train(ds *dataset.Dataset) (float64, error) {
	cfg := m.cfg
	lastLoss := math.Inf(1)
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		totalLoss := 0.0
		count := 0
		for batch := 0; batch < cfg.BatchesPerEpoch; batch++ {
			samples := ds.Batch(cfg.BatchSize, uint64(epoch*10007+batch))
			grads := m.zeroGrads()
			for _, s := range samples {
				loss, err := m.backward(s.Image, s.Label, grads)
				if err != nil {
					return 0, err
				}
				totalLoss += loss
				count++
			}
			m.step(grads, cfg.LearningRate/float64(cfg.BatchSize))
		}
		lastLoss = totalLoss / float64(count)
	}
	return lastLoss, nil
}

// Accuracy evaluates top-1 accuracy over n held-out samples.
func (m *Model) Accuracy(ds *dataset.Dataset, n int, streamSeed uint64) (float64, error) {
	samples := ds.Batch(n, streamSeed)
	correct := 0
	for _, s := range samples {
		pred, err := m.Predict(s.Image)
		if err != nil {
			return 0, err
		}
		if pred == s.Label {
			correct++
		}
	}
	return float64(correct) / float64(n), nil
}

type grads struct {
	w1, b1, w2, b2, wf, bf *tensor.Tensor
}

func (m *Model) zeroGrads() *grads {
	return &grads{
		w1: tensor.New(m.W1.Shape...), b1: tensor.New(m.B1.Shape...),
		w2: tensor.New(m.W2.Shape...), b2: tensor.New(m.B2.Shape...),
		wf: tensor.New(m.WF.Shape...), bf: tensor.New(m.BF.Shape...),
	}
}

func (m *Model) step(g *grads, lr float64) {
	apply := func(w, gw *tensor.Tensor) {
		for i := range w.Data {
			w.Data[i] -= lr * gw.Data[i]
		}
	}
	apply(m.W1, g.w1)
	apply(m.B1, g.b1)
	apply(m.W2, g.w2)
	apply(m.B2, g.b2)
	apply(m.WF, g.wf)
	apply(m.BF, g.bf)
}

// backward accumulates gradients for one sample, returning its loss.
func (m *Model) backward(x *tensor.Tensor, label int, g *grads) (float64, error) {
	st, err := m.forward(x)
	if err != nil {
		return 0, err
	}
	probs := tensor.Softmax(st.logits)
	loss := -math.Log(math.Max(probs.Data[label], 1e-12))

	k := m.cfg.Classes
	c2 := 2 * m.cfg.Channels
	// dLogits = probs - onehot
	dLogits := make([]float64, k)
	copy(dLogits, probs.Data)
	dLogits[label]--

	// FC: logits = g*WF^T + BF, g has c2 entries.
	gvec := st.g.Data // length c2
	dG := make([]float64, c2)
	for i := 0; i < k; i++ {
		g.bf.Data[i] += dLogits[i]
		for j := 0; j < c2; j++ {
			g.wf.Data[i*c2+j] += dLogits[i] * gvec[j]
			dG[j] += dLogits[i] * m.WF.Data[i*c2+j]
		}
	}

	// Global average pool over r2 (1,c2,h,w).
	h2, w2 := st.r2.Shape[2], st.r2.Shape[3]
	inv := 1 / float64(h2*w2)
	dR2 := tensor.New(st.r2.Shape...)
	for c := 0; c < c2; c++ {
		for i := 0; i < h2*w2; i++ {
			dR2.Data[c*h2*w2+i] = dG[c] * inv
		}
	}
	// ReLU 2.
	dA2 := maskBackward(dR2, st.a2)
	// Conv 2: accumulate weight grads and input grads.
	dP1 := convBackward(st.p1, m.W2, dA2, g.w2, g.b2, 1, 1)
	// Average pool 2x2 stride 2.
	dR1 := poolBackward(dP1, st.r1.Shape)
	// ReLU 1.
	dA1 := maskBackward(dR1, st.a1)
	// Conv 1 (input gradient discarded).
	convBackward(st.x, m.W1, dA1, g.w1, g.b1, 1, 1)
	return loss, nil
}

// maskBackward zeroes gradient where the pre-activation was negative.
func maskBackward(dOut, pre *tensor.Tensor) *tensor.Tensor {
	out := dOut.Clone()
	for i, v := range pre.Data {
		if v <= 0 {
			out.Data[i] = 0
		}
	}
	return out
}

// convBackward accumulates dW/dB for y = conv(x, W) + b and returns dX.
func convBackward(x, w, dY, gW, gB *tensor.Tensor, stride, pad int) *tensor.Tensor {
	cOut, cIn, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	hIn, wIn := x.Shape[2], x.Shape[3]
	hOut, wOut := dY.Shape[2], dY.Shape[3]
	dX := tensor.New(x.Shape...)
	for co := 0; co < cOut; co++ {
		for oy := 0; oy < hOut; oy++ {
			for ox := 0; ox < wOut; ox++ {
				d := dY.At(0, co, oy, ox)
				if d == 0 {
					continue
				}
				gB.Data[co] += d
				for ci := 0; ci < cIn; ci++ {
					for ky := 0; ky < kh; ky++ {
						iy := oy*stride + ky - pad
						if iy < 0 || iy >= hIn {
							continue
						}
						for kx := 0; kx < kw; kx++ {
							ix := ox*stride + kx - pad
							if ix < 0 || ix >= wIn {
								continue
							}
							gW.Data[((co*cIn+ci)*kh+ky)*kw+kx] += d * x.At(0, ci, iy, ix)
							dX.Data[((0*cIn+ci)*hIn+iy)*wIn+ix] += d * w.At(co, ci, ky, kx)
						}
					}
				}
			}
		}
	}
	return dX
}

// poolBackward distributes average-pool gradients (kernel 2, stride 2).
func poolBackward(dOut *tensor.Tensor, inShape []int) *tensor.Tensor {
	dIn := tensor.New(inShape...)
	c, hOut, wOut := dOut.Shape[1], dOut.Shape[2], dOut.Shape[3]
	wIn := inShape[3]
	for ci := 0; ci < c; ci++ {
		for oy := 0; oy < hOut; oy++ {
			for ox := 0; ox < wOut; ox++ {
				d := dOut.At(0, ci, oy, ox) / 4
				for dy := 0; dy < 2; dy++ {
					for dx := 0; dx < 2; dx++ {
						dIn.Data[(ci*inShape[2]+(2*oy+dy))*wIn+2*ox+dx] += d
					}
				}
			}
		}
	}
	return dIn
}

// Weights exports the trained parameters under the names
// onnx.BuildSmallCNN expects.
func (m *Model) Weights() map[string]*tensor.Tensor {
	return map[string]*tensor.Tensor{
		"conv1.weight": m.W1, "conv1.bias": m.B1,
		"conv2.weight": m.W2, "conv2.bias": m.B2,
		"fc.weight": m.WF, "fc.bias": m.BF,
	}
}

// Describe returns a short model summary.
func (m *Model) Describe() string {
	return fmt.Sprintf("small-cnn(c=%d, classes=%d, input=%dx%d)", m.cfg.Channels, m.cfg.Classes, m.cfg.InputSize, m.cfg.InputSize)
}

func transpose(t *tensor.Tensor) *tensor.Tensor {
	mRows, n := t.Shape[0], t.Shape[1]
	out := tensor.New(n, mRows)
	for i := 0; i < mRows; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*mRows+i] = t.Data[i*n+j]
		}
	}
	return out
}
