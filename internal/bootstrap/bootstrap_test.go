package bootstrap

import (
	"math"
	"math/rand/v2"
	"testing"

	"antace/internal/ckks"
	"antace/internal/ring"
)

type btContext struct {
	params *ckks.Parameters
	enc    *ckks.Encoder
	sk     *ckks.SecretKey
	encPk  *ckks.Encryptor
	dec    *ckks.Decryptor
	eval   *ckks.Evaluator
	bt     *Bootstrapper
}

func newBtContext(t testing.TB) *btContext {
	t.Helper()
	// Chain layout: q0 (60 bits), two 40-bit compute levels, then twelve
	// 60-bit levels for the bootstrap circuit itself.
	logQ := []int{60, 40, 40}
	for i := 0; i < 12; i++ {
		logQ = append(logQ, 60)
	}
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN:     8,
		LogQ:     logQ,
		LogP:     []int{61, 61},
		LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	bt, err := NewBootstrapper(params, Parameters{}, params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params, ring.SeedFromInt(123))
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	keys := &ckks.EvaluationKeySet{
		Rlk:    kg.GenRelinearizationKey(sk),
		Galois: kg.GenGaloisKeys(bt.RequiredRotations(), true, sk),
	}
	return &btContext{
		params: params,
		enc:    ckks.NewEncoder(params),
		sk:     sk,
		encPk:  ckks.NewEncryptor(params, pk),
		dec:    ckks.NewDecryptor(params, sk),
		eval:   ckks.NewEvaluator(params, keys),
		bt:     bt,
	}
}

func TestBootstrapDepthBudget(t *testing.T) {
	tc := newBtContext(t)
	if d := tc.bt.Depth(); d < 5 || d > 14 {
		t.Fatalf("bootstrap depth %d out of plausible band", d)
	}
	if tc.bt.MaxOutputLevel() < 1 {
		t.Fatalf("no output levels available: depth %d on chain %d", tc.bt.Depth(), tc.params.MaxLevel())
	}
}

func TestBootstrapRefreshesCiphertext(t *testing.T) {
	tc := newBtContext(t)
	slots := tc.params.Slots()
	rng := rand.New(rand.NewPCG(5, 11))
	values := make([]complex128, slots)
	for i := range values {
		values[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	pt, err := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct := tc.encPk.Encrypt(pt)
	// Exhaust the ciphertext.
	tc.eval.DropLevel(ct, ct.Level())
	if ct.Level() != 0 {
		t.Fatal("setup: ciphertext not at level 0")
	}

	target := tc.bt.MaxOutputLevel()
	out, err := tc.bt.Bootstrap(tc.eval, ct, target)
	if err != nil {
		t.Fatal(err)
	}
	if out.Level() != target {
		t.Fatalf("bootstrap output level %d, want %d", out.Level(), target)
	}
	got := tc.enc.Decode(tc.dec.Decrypt(out), slots)
	worst := 0.0
	for i := range got {
		re := math.Abs(real(got[i]) - real(values[i]))
		im := math.Abs(imag(got[i]) - imag(values[i]))
		if re > worst {
			worst = re
		}
		if im > worst {
			worst = im
		}
	}
	t.Logf("bootstrap max error: %.3e (~%.1f bits)", worst, -math.Log2(worst))
	if worst > 5e-4 {
		t.Fatalf("bootstrap error %g too large", worst)
	}
}

func TestBootstrapMinimalLevel(t *testing.T) {
	tc := newBtContext(t)
	slots := tc.params.Slots()
	values := make([]complex128, slots)
	for i := range values {
		values[i] = complex(0.5, 0)
	}
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encPk.Encrypt(pt)
	tc.eval.DropLevel(ct, ct.Level())

	// Refresh to level 2 only (the paper's minimal-level strategy): the
	// circuit must sit entirely on the large-prime levels above the
	// compute region, so 2 is the lowest target this chain supports.
	out, err := tc.bt.Bootstrap(tc.eval, ct, 2)
	if err != nil {
		t.Fatal(err)
	}
	if out.Level() != 2 {
		t.Fatalf("bootstrap output level %d, want 2", out.Level())
	}
	// The refreshed ciphertext must support a further multiplication.
	sq, err := tc.eval.MulRelin(out, out)
	if err != nil {
		t.Fatal(err)
	}
	sq, err = tc.eval.Rescale(sq)
	if err != nil {
		t.Fatal(err)
	}
	got := tc.enc.Decode(tc.dec.Decrypt(sq), slots)
	for i := range got {
		if math.Abs(real(got[i])-0.25) > 3e-2 {
			t.Fatalf("slot %d: got %g, want 0.25", i, real(got[i]))
		}
	}
}

func TestBootstrapRejectsBadInputs(t *testing.T) {
	tc := newBtContext(t)
	slots := tc.params.Slots()
	values := make([]complex128, slots)
	pt, _ := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	ct := tc.encPk.Encrypt(pt)

	// Not at level 0.
	if _, err := tc.bt.Bootstrap(tc.eval, ct, 1); err == nil {
		t.Fatal("expected error for non-exhausted ciphertext")
	}
	tc.eval.DropLevel(ct, ct.Level())
	// Target level out of range.
	if _, err := tc.bt.Bootstrap(tc.eval, ct, tc.bt.MaxOutputLevel()+1); err == nil {
		t.Fatal("expected error for excessive target level")
	}
	if _, err := tc.bt.Bootstrap(tc.eval, ct, 0); err == nil {
		t.Fatal("expected error for target level 0")
	}
}

func TestLinearTransformRoundTrip(t *testing.T) {
	// The product SF * SFinv must be the identity on slot vectors; this
	// validates the probed matrices independently of the full pipeline.
	tc := newBtContext(t)
	slots := tc.params.Slots()
	rng := rand.New(rand.NewPCG(17, 3))
	in := make([]complex128, slots)
	for i := range in {
		in[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	mid := tc.bt.c2s.MulVec(in)
	out := tc.bt.s2c.MulVec(mid)
	// c2s folds 1/(2B), s2c folds q0/(2*pi*D): combined gain is
	// q0/(4*pi*B*D).
	gain := tc.bt.q0 / (4 * math.Pi * tc.bt.b * tc.bt.d)
	for i := range out {
		want := in[i] * complex(gain, 0)
		if e := out[i] - want; math.Hypot(real(e), imag(e)) > 1e-9*math.Abs(gain) {
			t.Fatalf("SF*SFinv not identity at %d: got %v want %v", i, out[i], want)
		}
	}
}
