package bootstrap

import (
	"math/rand/v2"
	"testing"

	"antace/internal/par"
)

// TestParallelMatchesSerial bootstraps the same exhausted ciphertext with
// 1 and 8 workers and asserts bit-identical output coefficients: the whole
// pipeline (ModRaise, CoeffsToSlots, EvalMod, SlotsToCoeffs) is exact
// modular arithmetic once the input bytes are fixed, so limb scheduling
// must not change a single coefficient. par.SetMinWork(1) precedes
// newBtContext so its rings capture a grain that parallelises at LogN 8.
func TestParallelMatchesSerial(t *testing.T) {
	par.SetMinWork(1)
	defer par.SetMinWork(0)

	tc := newBtContext(t)
	slots := tc.params.Slots()
	rng := rand.New(rand.NewPCG(17, 29))
	values := make([]complex128, slots)
	for i := range values {
		values[i] = complex(rng.Float64()*2-1, rng.Float64()*2-1)
	}
	pt, err := tc.enc.Encode(values, tc.params.MaxLevel(), tc.params.DefaultScale())
	if err != nil {
		t.Fatal(err)
	}
	ct := tc.encPk.Encrypt(pt)
	tc.eval.DropLevel(ct, ct.Level())
	target := tc.bt.MaxOutputLevel()

	prev := par.Workers()
	defer par.SetWorkers(prev)

	par.SetWorkers(1)
	serial, err := tc.bt.Bootstrap(tc.eval, ct.CopyNew(), target)
	if err != nil {
		t.Fatal(err)
	}
	par.SetWorkers(8)
	parallel, err := tc.bt.Bootstrap(tc.eval, ct.CopyNew(), target)
	if err != nil {
		t.Fatal(err)
	}

	if serial.Scale != parallel.Scale || len(serial.Value) != len(parallel.Value) {
		t.Fatal("bootstrap outputs differ in shape between 1 and 8 workers")
	}
	for i := range serial.Value {
		if !serial.Value[i].Equal(parallel.Value[i]) {
			t.Fatalf("bootstrap output polynomial %d differs between 1 and 8 workers", i)
		}
	}
}
