// Package bootstrap implements CKKS bootstrapping: the noise-refreshing
// procedure that raises an exhausted (level-0) ciphertext back to a
// usable level so that homomorphic evaluation can continue indefinitely.
//
// The pipeline is the standard one (Cheon et al. "Bootstrapping for
// Approximate Homomorphic Encryption", with the Han–Ki cosine/double-
// angle EvalMod):
//
//  1. ScaleUp — multiply the message up to q0/MessageRatio.
//  2. ModRaise — re-interpret the level-0 ciphertext modulo Q_l, yielding
//     t = m + q0·I with a small integer polynomial I.
//  3. CoeffsToSlots — a homomorphic inverse embedding moving the
//     coefficients of t into slots (two ciphertexts: real and imaginary
//     coefficient halves).
//  4. EvalMod — approximate t mod q0 on each slot with a Chebyshev
//     interpolation of a scaled cosine followed by double-angle steps.
//  5. SlotsToCoeffs — the forward embedding moving the refreshed slots
//     back into coefficients.
//
// Following the paper's "minimal-level" strategy (§4.4), Bootstrap can
// refresh to a caller-chosen target level rather than the top of the
// chain, which shrinks every subsequent homomorphic operation.
package bootstrap

import (
	"fmt"
	"math"

	"antace/internal/ckks"
	"antace/internal/poly"
)

// Parameters configures the bootstrapping circuit.
type Parameters struct {
	// K bounds the coefficients of the integer polynomial I (a function
	// of the secret key density); the EvalMod interpolation covers
	// [-(K+1), K+1] in q0 units. Default 16.
	K int
	// MessageRatio is q0 / (message scale) headroom kept so that
	// sin(2*pi*m/q0) ~ 2*pi*m/q0. Default 256.
	MessageRatio float64
	// EvalModDegree is the Chebyshev degree of the cosine interpolation.
	// Default 30.
	EvalModDegree int
	// DoubleAngle is the number of angle-doubling iterations. Default 3.
	DoubleAngle int
}

// WithDefaults fills unset fields with the default configuration.
func (p Parameters) WithDefaults() Parameters { return p.withDefaults() }

// CircuitDepth returns the number of levels the bootstrap circuit for
// this configuration consumes, without instantiating it: C2S (1) +
// scale normalisation (1) + EvalMod polynomial (ceil(log2(deg+1)) + 1) +
// double angles + S2C (1). Must agree with Bootstrapper.Depth.
func CircuitDepth(p Parameters) int {
	p = p.withDefaults()
	depth := 0
	for (1 << depth) < p.EvalModDegree+1 {
		depth++
	}
	return 1 + 1 + depth + 1 + p.DoubleAngle + 1
}

func (p Parameters) withDefaults() Parameters {
	if p.K == 0 {
		p.K = 16
	}
	if p.MessageRatio == 0 {
		p.MessageRatio = 256
	}
	if p.EvalModDegree == 0 {
		p.EvalModDegree = 30
	}
	if p.DoubleAngle == 0 {
		p.DoubleAngle = 3
	}
	return p
}

// Bootstrapper holds the precomputed matrices and polynomials.
type Bootstrapper struct {
	params  *ckks.Parameters
	bp      Parameters
	enc     *ckks.Encoder
	c2s     *ckks.LinearTransform // (1/(2B)) * SFinv
	s2c     *ckks.LinearTransform // (q0/(2*pi*D)) * SF
	evalMod *poly.Polynomial      // cos interpolation before double-angle

	q0 float64
	d  float64 // declared scale after ScaleUp+ModRaise
	b  float64 // normalisation bound for EvalMod input

	// circuitScale is the working scale inside the bootstrap circuit.
	// The circuit's levels should carry primes of about this size (the
	// top of the chain, typically ~2^60): large primes keep the encoded
	// DFT matrices and EvalMod constants precise, and matching the scale
	// to the prime size keeps rescaling scale-stable.
	circuitScale float64
}

// NewBootstrapper precomputes the bootstrapping circuit for the given
// parameters. The input scale is the scale ciphertexts will carry when
// Bootstrap is called (typically params.DefaultScale()).
func NewBootstrapper(params *ckks.Parameters, bp Parameters, inputScale float64) (*Bootstrapper, error) {
	bp = bp.withDefaults()
	if inputScale == 0 {
		inputScale = params.DefaultScale()
	}
	q0 := float64(params.Q()[0])
	k := math.Round(q0 / (bp.MessageRatio * inputScale))
	if k < 1 {
		return nil, fmt.Errorf("bootstrap: input scale %g too close to q0 %g for message ratio %g", inputScale, q0, bp.MessageRatio)
	}
	d := k * inputScale // declared scale after ScaleUp (message now m = v*d)
	// EvalMod input bound: |t|/d <= (q0*(K+1))/d; normalised by B so the
	// Chebyshev domain is [-1,1].
	b := float64(bp.K+1) * q0 / d

	bt := &Bootstrapper{
		params:       params,
		bp:           bp,
		enc:          ckks.NewEncoder(params),
		q0:           q0,
		d:            d,
		b:            b,
		circuitScale: float64(params.Q()[params.MaxLevel()]),
	}
	bt.buildMatrices()
	bt.buildEvalMod()
	return bt, nil
}

// buildMatrices probes the encoder FFT with unit vectors to obtain the
// special FFT and its inverse as dense diagonal-form linear transforms.
func (bt *Bootstrapper) buildMatrices() {
	n := bt.params.Slots()
	sfinv := make([][]complex128, n)
	sf := make([][]complex128, n)
	for i := range sfinv {
		sfinv[i] = make([]complex128, n)
		sf[i] = make([]complex128, n)
	}
	probe := make([]complex128, n)
	for j := 0; j < n; j++ {
		for i := range probe {
			probe[i] = 0
		}
		probe[j] = 1
		bt.enc.SpecialFFTInv(probe)
		for i := 0; i < n; i++ {
			sfinv[i][j] = probe[i]
		}
		for i := range probe {
			probe[i] = 0
		}
		probe[j] = 1
		bt.enc.SpecialFFT(probe)
		for i := 0; i < n; i++ {
			sf[i][j] = probe[i]
		}
	}
	// CoeffsToSlots: u = (1/(2B)) SFinv * v.
	c2sScale := complex(1/(2*bt.b), 0)
	// SlotsToCoeffs: out = (q0/(2 pi D)) SF * y.
	s2cScale := complex(bt.q0/(2*math.Pi*bt.d), 0)
	for i := 0; i < n; i++ {
		for j := 0; j < n; j++ {
			sfinv[i][j] *= c2sScale
			sf[i][j] *= s2cScale
		}
	}
	bt.c2s = ckks.NewLinearTransformFromMatrix(sfinv)
	bt.s2c = ckks.NewLinearTransformFromMatrix(sf)
}

// buildEvalMod interpolates h(x) = cos(2*pi*freq*x/2^r - pi/2^(r+1)) on
// [-1,1], where freq = B*D/q0 = K+1 restores the true q0-periodicity
// after the input normalisation by B.
func (bt *Bootstrapper) buildEvalMod() {
	freq := bt.b * bt.d / bt.q0
	r := float64(int(1) << bt.bp.DoubleAngle)
	h := func(x float64) float64 {
		return math.Cos((2*math.Pi*freq*x - math.Pi/2) / r)
	}
	bt.evalMod = poly.ChebyshevInterpolate(h, -1, 1, bt.bp.EvalModDegree)
}

// RequiredRotations returns the slot rotations the evaluator's key set
// must cover (conjugation is needed as well).
func (bt *Bootstrapper) RequiredRotations() []int {
	set := map[int]bool{}
	for _, r := range bt.c2s.Rotations() {
		set[r] = true
	}
	for _, r := range bt.s2c.Rotations() {
		set[r] = true
	}
	out := make([]int, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	return out
}

// Depth returns the number of levels the bootstrap circuit consumes
// above its output level.
func (bt *Bootstrapper) Depth() int {
	return CircuitDepth(bt.bp)
}

// MaxOutputLevel is the highest level Bootstrap can refresh to.
func (bt *Bootstrapper) MaxOutputLevel() int {
	return bt.params.MaxLevel() - bt.Depth()
}

// Bootstrap refreshes ct (which must be at level 0 with |values| <= 1) to
// the given target level. Following the paper's minimal-level strategy,
// pass the smallest level your remaining computation needs; pass
// MaxOutputLevel() to refresh as high as possible.
func (bt *Bootstrapper) Bootstrap(ev *ckks.Evaluator, ct *ckks.Ciphertext, targetLevel int) (*ckks.Ciphertext, error) {
	if ct.Level() != 0 {
		return nil, fmt.Errorf("bootstrap: ciphertext at level %d, expected 0 (drop first)", ct.Level())
	}
	if targetLevel < 1 || targetLevel > bt.MaxOutputLevel() {
		return nil, fmt.Errorf("bootstrap: target level %d out of [1, %d]", targetLevel, bt.MaxOutputLevel())
	}
	// 1. ScaleUp to D.
	k := uint64(math.Round(bt.d / ct.Scale))
	if k == 0 {
		return nil, fmt.Errorf("bootstrap: ciphertext scale %g above the configured input scale", ct.Scale)
	}
	up := ev.ScaleUp(ct, k)
	// The declared scale is now k*ct.Scale; the circuit was built for D.
	// Any tiny mismatch shows up as a proportional output error, so we
	// fold it in exactly by re-declaring (difference is < 1 part in 2^40
	// when ct.Scale matches the scale the bootstrapper was built for).
	rel := up.Scale / bt.d
	if rel < 0.5 || rel > 2 {
		return nil, fmt.Errorf("bootstrap: scale drift too large (declared %g, circuit expects %g)", up.Scale, bt.d)
	}

	// 2. ModRaise, then drop to the level budget needed.
	raised := ev.ModRaise(up, targetLevel+bt.Depth())
	raised.Scale = bt.d

	// 3. CoeffsToSlots. The transform keeps the (large) declared scale of
	// the raised ciphertext (plaintext scale = rescaling prime) so the
	// matrix entries retain precision; a SetScale then brings the halves
	// back to the default scale over a second rescale.
	u, err := ev.EvaluateLinearTransform(raised, bt.c2s, bt.enc, raised.Scale)
	if err != nil {
		return nil, fmt.Errorf("bootstrap: CoeffsToSlots: %w", err)
	}
	uc, err := ev.Conjugate(u)
	if err != nil {
		return nil, err
	}
	ct0, err := ev.Add(u, uc) // real coefficient half
	if err != nil {
		return nil, err
	}
	diff, err := ev.Sub(u, uc)
	if err != nil {
		return nil, err
	}
	ct1 := ev.Neg(ev.MulByI(diff)) // imaginary coefficient half
	if ct0, err = ev.SetScale(ct0, bt.circuitScale); err != nil {
		return nil, err
	}
	if ct1, err = ev.SetScale(ct1, bt.circuitScale); err != nil {
		return nil, err
	}

	// 4. EvalMod on both halves.
	y0, err := bt.evalModCt(ev, ct0)
	if err != nil {
		return nil, fmt.Errorf("bootstrap: EvalMod: %w", err)
	}
	y1, err := bt.evalModCt(ev, ct1)
	if err != nil {
		return nil, fmt.Errorf("bootstrap: EvalMod: %w", err)
	}

	// 5. Recombine and SlotsToCoeffs.
	y1i := ev.MulByI(y1)
	yc, err := ev.Add(y0, y1i)
	if err != nil {
		return nil, err
	}
	out, err := ev.EvaluateLinearTransform(yc, bt.s2c, bt.enc, bt.params.DefaultScale())
	if err != nil {
		return nil, fmt.Errorf("bootstrap: SlotsToCoeffs: %w", err)
	}
	// Absorb the ScaleUp drift exactly: the circuit divides by the D it
	// was built with, so the output values carry a factor rel = D'/D.
	out.Scale = out.Scale * rel
	if out.Level() > targetLevel {
		if err := ev.DropLevel(out, out.Level()-targetLevel); err != nil {
			return nil, err
		}
	}
	return out, nil
}

// evalModCt applies the cosine interpolation followed by the double-angle
// iterations, producing sin(2*pi*t/q0) (up to the folded constants).
func (bt *Bootstrapper) evalModCt(ev *ckks.Evaluator, ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	y, err := ev.EvaluatePolynomial(ct, bt.evalMod, bt.circuitScale)
	if err != nil {
		return nil, err
	}
	for i := 0; i < bt.bp.DoubleAngle; i++ {
		sq, err := ev.Mul(y, y)
		if err != nil {
			return nil, err
		}
		dbl, err := ev.Add(sq, sq)
		if err != nil {
			return nil, err
		}
		dbl = ev.AddConst(dbl, -1)
		rl, err := ev.Relinearize(dbl)
		if err != nil {
			return nil, err
		}
		y, err = ev.Rescale(rl)
		if err != nil {
			return nil, err
		}
	}
	return y, nil
}
