package vecir

import (
	"math"
	"math/rand/v2"
	"testing"

	"antace/internal/ir"
	"antace/internal/nnir"
	"antace/internal/onnx"
	"antace/internal/tensor"
)

func TestLayoutSlotBijective(t *testing.T) {
	for _, lay := range []*Layout{
		{C: 4, H: 8, W: 8, H0: 8, W0: 8, Sy: 1, Sx: 1, L: 256, Gain: 1},
		{C: 8, H: 4, W: 4, H0: 8, W0: 8, Sy: 2, Sx: 2, L: 256, Gain: 1},
		{C: 16, H: 2, W: 2, H0: 8, W0: 8, Sy: 4, Sx: 4, L: 256, Gain: 1},
	} {
		seen := map[int]bool{}
		for c := 0; c < lay.C; c++ {
			for y := 0; y < lay.H; y++ {
				for x := 0; x < lay.W; x++ {
					s := lay.Slot(c, y, x)
					if s < 0 || s >= lay.L {
						t.Fatalf("%s: slot %d out of range", lay, s)
					}
					if seen[s] {
						t.Fatalf("%s: slot %d reused", lay, s)
					}
					seen[s] = true
				}
			}
		}
	}
}

func TestLayoutPackUnpackRoundTrip(t *testing.T) {
	lay := &Layout{C: 8, H: 4, W: 4, H0: 8, W0: 8, Sy: 2, Sx: 2, L: 512, Gain: 2}
	data := make([]float64, 8*4*4)
	for i := range data {
		data[i] = float64(i) + 1
	}
	v, err := lay.Pack(data)
	if err != nil {
		t.Fatal(err)
	}
	back, err := lay.Unpack(v)
	if err != nil {
		t.Fatal(err)
	}
	for i := range data {
		if math.Abs(back[i]-data[i]) > 1e-12 {
			t.Fatalf("pack/unpack mismatch at %d", i)
		}
	}
	if _, err := lay.Pack(data[:5]); err == nil {
		t.Fatal("expected size error")
	}
}

func TestDownsampleValidation(t *testing.T) {
	lay, err := NewInputLayout(3, 8, 8, 1024)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewInputLayout(3, 7, 8, 1024); err == nil {
		t.Fatal("expected power-of-two error")
	}
	d, err := lay.Downsample(2, 12)
	if err != nil {
		t.Fatal(err)
	}
	if d.H != 4 || d.Sy != 2 || d.Blocks() != 3 {
		t.Fatalf("downsample gave %s", d)
	}
	if _, err := lay.Downsample(3, 3); err == nil {
		t.Fatal("expected non-dividing stride error")
	}
}

// lowerAndCompare compiles a model to VECTOR IR and checks the vector
// executor against the NN reference on random inputs.
func lowerAndCompare(t *testing.T, m *onnx.Model, opts Options, seeds []uint64, tol float64) (*Result, *ir.Module) {
	t.Helper()
	nn, err := nnir.Import(m)
	if err != nil {
		t.Fatal(err)
	}
	pm := &ir.PassManager{}
	pm.Add(nnir.FuseConvBatchNorm(), ir.DCE())
	if err := pm.Run(nn); err != nil {
		t.Fatal(err)
	}
	res, err := Lower(nn, opts)
	if err != nil {
		t.Fatal(err)
	}
	inShape := nn.Main().Params[0].Type.Shape
	for _, seed := range seeds {
		rng := rand.New(rand.NewPCG(seed, 17))
		x := tensor.New(inShape...)
		for i := range x.Data {
			x.Data[i] = rng.Float64()*2 - 1
		}
		want, err := nnir.Run(nn.Main(), map[string]*tensor.Tensor{nn.Main().Params[0].Name: x})
		if err != nil {
			t.Fatal(err)
		}
		packed, err := res.InLayout.Pack(x.Data)
		if err != nil {
			t.Fatal(err)
		}
		outVec, err := Run(res.Module.Main(), packed)
		if err != nil {
			t.Fatal(err)
		}
		got, err := res.OutLayout.Unpack(outVec)
		if err != nil {
			t.Fatal(err)
		}
		for i := range want.Data {
			if math.Abs(got[i]-want.Data[i]) > tol {
				t.Fatalf("seed %d output %d: vec %g vs nn %g", seed, i, got[i], want.Data[i])
			}
		}
	}
	return res, nn
}

func TestLowerLinear(t *testing.T) {
	m, err := onnx.BuildLinear(84, 10, 5)
	if err != nil {
		t.Fatal(err)
	}
	res, _ := lowerAndCompare(t, m, Options{}, []uint64{1, 2}, 1e-9)
	if res.InLayout.C != 84 || res.OutLayout.C != 10 {
		t.Fatalf("layouts: in %s out %s", res.InLayout, res.OutLayout)
	}
	// Dense FC output: class k at slot k.
	if res.OutLayout.Slot(3, 0, 0) != 3 {
		t.Fatal("FC output not densely packed")
	}
}

func TestLowerSmallCNN(t *testing.T) {
	m, err := onnx.BuildSmallCNN(onnx.SmallCNNConfig{InputSize: 8, Channels: 4, Classes: 4})
	if err != nil {
		t.Fatal(err)
	}
	lowerAndCompare(t, m, Options{}, []uint64{3, 4}, 1e-9)
}

func TestLowerResNetMini(t *testing.T) {
	m, err := onnx.BuildResNet(onnx.ResNetConfig{Depth: 8, BaseChannels: 4, InputSize: 8, Classes: 10})
	if err != nil {
		t.Fatal(err)
	}
	lowerAndCompare(t, m, Options{}, []uint64{5}, 1e-9)
}

func TestLowerResNetMiniNaive(t *testing.T) {
	m, err := onnx.BuildResNet(onnx.ResNetConfig{Depth: 8, BaseChannels: 4, InputSize: 8, Classes: 10})
	if err != nil {
		t.Fatal(err)
	}
	resShared, _ := lowerAndCompare(t, m, Options{}, []uint64{6}, 1e-9)
	resNaive, _ := lowerAndCompare(t, m, Options{NaiveConv: true}, []uint64{6}, 1e-9)
	shared := Analyze(resShared.Module.Main())
	naive := Analyze(resNaive.Module.Main())
	if shared.Rotations >= naive.Rotations {
		t.Fatalf("rotation sharing did not help: shared %d vs naive %d", shared.Rotations, naive.Rotations)
	}
	if shared.DistinctRotations >= naive.DistinctRotations {
		t.Fatalf("key analysis: shared %d vs naive %d distinct rotations", shared.DistinctRotations, naive.DistinctRotations)
	}
}

// TestLowerConvModes: every enumerable BSGS split must compute the same
// function; the swapped split must actually change the rotation
// structure (otherwise the plan enumerator is choosing between clones).
func TestLowerConvModes(t *testing.T) {
	m, err := onnx.BuildResNet(onnx.ResNetConfig{Depth: 8, BaseChannels: 4, InputSize: 8, Classes: 10})
	if err != nil {
		t.Fatal(err)
	}
	counts := map[ConvMode]Stats{}
	rolls := map[ConvMode][]int{}
	for _, mode := range ConvModes() {
		res, _ := lowerAndCompare(t, m, Options{Conv: mode}, []uint64{9}, 1e-9)
		counts[mode] = Analyze(res.Module.Main())
		for _, in := range res.Module.Main().Body {
			if in.Op == OpRoll {
				rolls[mode] = append(rolls[mode], in.AttrInt("k", 0))
			}
		}
	}
	// The swap transposes the (rv, sj) table, so aggregate counts tie —
	// the *sequence* of roll amounts (which offsets are shared babies vs
	// per-diagonal giants) is what must change.
	same := len(rolls[ConvChannelGiant]) == len(rolls[ConvSpatialGiant])
	if same {
		for i, k := range rolls[ConvChannelGiant] {
			if rolls[ConvSpatialGiant][i] != k {
				same = false
				break
			}
		}
	}
	if same {
		t.Fatal("spatial-giant split produced the identical roll schedule to channel-giant")
	}
	if counts[ConvNaive].Rotations <= counts[ConvChannelGiant].Rotations {
		t.Fatalf("naive (%d rotations) not above channel-giant (%d)",
			counts[ConvNaive].Rotations, counts[ConvChannelGiant].Rotations)
	}
}

func TestVectorLenAuto(t *testing.T) {
	m, _ := onnx.BuildSmallCNN(onnx.SmallCNNConfig{InputSize: 8, Channels: 4, Classes: 4})
	nn, err := nnir.Import(m)
	if err != nil {
		t.Fatal(err)
	}
	pm := &ir.PassManager{}
	pm.Add(nnir.FuseConvBatchNorm(), ir.DCE())
	if err := pm.Run(nn); err != nil {
		t.Fatal(err)
	}
	l, err := VectorLen(nn.Main())
	if err != nil {
		t.Fatal(err)
	}
	if l&(l-1) != 0 || l < 4*64 {
		t.Fatalf("vector length %d implausible", l)
	}
}

func TestAnalyzeCounts(t *testing.T) {
	m, _ := onnx.BuildLinear(16, 4, 9)
	nn, _ := nnir.Import(m)
	res, err := Lower(nn, Options{})
	if err != nil {
		t.Fatal(err)
	}
	s := Analyze(res.Module.Main())
	if s.Mults == 0 {
		t.Fatal("no multiplications counted")
	}
	if s.DistinctRotations > s.Rotations {
		t.Fatal("distinct rotations exceed total rotations")
	}
}
