package vecir

import (
	"fmt"
	"sort"

	"antace/internal/ir"
	"antace/internal/nnir"
	"antace/internal/tensor"
)

// Op names.
const (
	OpAdd  = "vec.add"
	OpMul  = "vec.mul"
	OpRoll = "vec.roll"
	OpRelu = "vec.relu"
	// OpNonlinear is a pointwise nonlinearity approximated at the SIHE
	// level: attrs "kind" (sigmoid|tanh) and "bound" (input range).
	OpNonlinear = "vec.nonlinear"
)

func init() {
	V := []ir.Kind{ir.KindVector}
	ir.RegisterOp(ir.OpSpec{Name: OpAdd, Args: [][]ir.Kind{V, V}, Result: ir.KindVector})
	ir.RegisterOp(ir.OpSpec{Name: OpMul, Args: [][]ir.Kind{V, V}, Result: ir.KindVector})
	ir.RegisterOp(ir.OpSpec{Name: OpRoll, Args: [][]ir.Kind{V}, Result: ir.KindVector, RequiredAttrs: []string{"k"}})
	ir.RegisterOp(ir.OpSpec{Name: OpRelu, Args: [][]ir.Kind{V}, Result: ir.KindVector, RequiredAttrs: []string{"bound"}})
	ir.RegisterOp(ir.OpSpec{Name: OpNonlinear, Args: [][]ir.Kind{V}, Result: ir.KindVector, RequiredAttrs: []string{"kind", "bound"}})
}

// ConvMode selects where the BSGS convolution structure splits each
// weight offset into a shared baby rotation and a per-diagonal giant
// rotation. The decomposition rv + sj = channel displacement + spatial
// offset is algebraically symmetric, so either component can play
// either role; the two-level modes trade which rotations are shared
// across diagonals (babies, hoisted on the layer input) against which
// are issued once per accumulated diagonal (giants). The plan
// enumerator in internal/core compiles a candidate per mode and ranks
// them under the calibrated cost model.
type ConvMode int

const (
	// ConvChannelGiant is the default two-level structure: spatial
	// offsets are the shared baby rotations, cross-channel diagonal
	// displacements the giant rotations.
	ConvChannelGiant ConvMode = iota
	// ConvSpatialGiant swaps the roles: channel displacements become the
	// shared babies, spatial offsets the giants.
	ConvSpatialGiant
	// ConvNaive folds both components into one rotation per distinct
	// total offset, as a hand-written implementation without diagonal
	// grouping would issue — the Expert baseline's structure.
	ConvNaive
)

func (m ConvMode) String() string {
	switch m {
	case ConvSpatialGiant:
		return "spatial-giant"
	case ConvNaive:
		return "naive"
	}
	return "channel-giant"
}

// ConvModes lists every enumerable convolution structure.
func ConvModes() []ConvMode { return []ConvMode{ConvChannelGiant, ConvSpatialGiant, ConvNaive} }

// Options configures the lowering.
type Options struct {
	// VectorLen forces the slot-vector length (0 selects the smallest
	// power of two that fits the widest layer).
	VectorLen int
	// Conv selects the BSGS split point of the convolution lowering.
	Conv ConvMode
	// NaiveConv is the legacy switch for ConvNaive: one rotation per
	// distinct total offset. Used by the Expert baseline and the
	// ablation benchmarks; equivalent to Conv = ConvNaive.
	NaiveConv bool
	// DefaultReLUBound bounds |x| at ReLU inputs when no calibrated
	// bound attribute is present on the nn.relu instruction.
	DefaultReLUBound float64
	// AnalysisOnly discards mask payloads after constructing them,
	// keeping unique one-element stubs: the compiled module retains its
	// exact structure (instruction counts, rotations, levels) for the
	// figure/table analyses at paper scale, but cannot be executed.
	// Compile timing is unaffected — the masks are still built.
	AnalysisOnly bool
}

// convMode resolves the effective convolution structure, honouring the
// legacy NaiveConv flag.
func (o Options) convMode() ConvMode {
	if o.NaiveConv {
		return ConvNaive
	}
	return o.Conv
}

// Result carries the lowered module plus the packings of its boundary.
type Result struct {
	Module    *ir.Module
	InLayout  *Layout
	OutLayout *Layout
}

// VectorLen simulates the layout evolution of an NN IR function and
// returns the smallest power-of-two vector length that fits every layer.
func VectorLen(f *ir.Func) (int, error) {
	need := 0
	update := func(lay *Layout) {
		if n := lay.Blocks() * lay.H0 * lay.W0; n > need {
			need = n
		}
	}
	layouts := map[*ir.Value]*Layout{}
	in, err := inputLayout(f)
	if err != nil {
		return 0, err
	}
	layouts[f.Params[0]] = in
	update(in)
	big := 1 << 30
	in.L = big // temporarily unconstrained
	for _, instr := range f.Body {
		lay, err := resultLayout(instr, layouts)
		if err != nil {
			return 0, err
		}
		if lay != nil {
			layouts[instr.Result] = lay
			update(lay)
		}
	}
	return nextPow2(need), nil
}

func nextPow2(x int) int {
	p := 1
	for p < x {
		p <<= 1
	}
	return p
}

// inputLayout derives the initial layout from the function's parameter.
func inputLayout(f *ir.Func) (*Layout, error) {
	if len(f.Params) != 1 {
		return nil, fmt.Errorf("vecir: expected a single input, have %d", len(f.Params))
	}
	sh := f.Params[0].Type.Shape
	switch len(sh) {
	case 4: // (1, C, H, W)
		return NewInputLayout(sh[1], sh[2], sh[3], 1<<30)
	case 2: // (1, F): F channels of 1x1
		return NewInputLayout(sh[1], 1, 1, 1<<30)
	}
	return nil, fmt.Errorf("vecir: unsupported input shape %v", sh)
}

// resultLayout computes the layout an op produces (shape analysis only;
// shared by VectorLen and the real lowering).
func resultLayout(in *ir.Instr, layouts map[*ir.Value]*Layout) (*Layout, error) {
	li := layouts[in.Args[0]]
	switch in.Op {
	case nnir.OpConv:
		w := in.Args[1].Const.(*tensor.Tensor)
		stride := in.AttrInt("stride", 1)
		if stride == 1 {
			return li.WithChannels(w.Shape[0])
		}
		return li.Downsample(stride, w.Shape[0])
	case nnir.OpAvgPool:
		k := in.AttrInt("kernel", 1)
		s := in.AttrInt("stride", 1)
		if k != s {
			return nil, fmt.Errorf("vecir: average_pool with kernel %d != stride %d unsupported", k, s)
		}
		out, err := li.Downsample(s, li.C)
		if err != nil {
			return nil, err
		}
		out.Gain = li.Gain * float64(k*k)
		return out, nil
	case nnir.OpGlobalPool:
		out := *li
		out.H, out.W = 1, 1
		out.Gain = li.Gain * float64(li.H*li.W)
		return &out, nil
	case nnir.OpGemm:
		w := in.Args[1].Const.(*tensor.Tensor)
		classes := w.Shape[0]
		if in.AttrInt("transB", 0) == 0 {
			classes = w.Shape[1]
		}
		return &Layout{
			C: classes, H: 1, W: 1,
			H0: li.H0, W0: li.W0,
			Sy: li.H0, Sx: li.W0,
			L: li.L, Gain: 1,
		}, nil
	case nnir.OpRelu, nnir.OpSigmoid, nnir.OpTanh, nnir.OpAdd:
		out := *li
		return &out, nil
	case nnir.OpFlatten, nnir.OpReshape:
		out := *li
		return &out, nil
	case nnir.OpBatchNorm:
		return nil, fmt.Errorf("vecir: batch_norm must be fused before lowering")
	}
	return nil, fmt.Errorf("vecir: cannot lower op %q", in.Op)
}

// Lower converts an NN IR module into a VECTOR IR module.
func Lower(nn *ir.Module, opts Options) (*Result, error) {
	src := nn.Main()
	if src == nil {
		return nil, fmt.Errorf("vecir: empty module")
	}
	if opts.DefaultReLUBound == 0 {
		opts.DefaultReLUBound = 40
	}
	l := opts.VectorLen
	if l == 0 {
		var err error
		l, err = VectorLen(src)
		if err != nil {
			return nil, err
		}
	}

	mod := ir.NewModule(nn.Name)
	f := mod.NewFunc(src.Name)
	vt := ir.VectorType(l)
	inLay, err := inputLayout(src)
	if err != nil {
		return nil, err
	}
	inLay.L = l
	if need := inLay.Blocks() * inLay.H0 * inLay.W0; need > l {
		return nil, fmt.Errorf("vecir: vector length %d below input need %d", l, need)
	}

	lw := &lowering{f: f, l: l, vt: vt, opts: opts}
	vals := map[*ir.Value]*ir.Value{src.Params[0]: f.NewParam(src.Params[0].Name, vt)}
	lays := map[*ir.Value]*Layout{src.Params[0]: inLay}

	for _, in := range src.Body {
		li := lays[in.Args[0]]
		x := vals[in.Args[0]]
		if li == nil || x == nil {
			return nil, fmt.Errorf("vecir: %s input not lowered", in.Op)
		}
		lo, err := resultLayout(in, lays)
		if err != nil {
			return nil, err
		}
		lo.L = l
		var out *ir.Value
		switch in.Op {
		case nnir.OpConv:
			w := in.Args[1].Const.(*tensor.Tensor)
			var bias *tensor.Tensor
			if len(in.Args) == 3 {
				bias = in.Args[2].Const.(*tensor.Tensor)
			}
			out, err = lw.emitConv(x, li, lo, w, bias, in.AttrInt("stride", 1), in.AttrInt("pad", 0))
		case nnir.OpAvgPool:
			// Depthwise sum (the 1/k^2 is folded into the layout gain).
			k := in.AttrInt("kernel", 1)
			w := tensor.New(li.C, li.C, k, k)
			for c := 0; c < li.C; c++ {
				for i := 0; i < k*k; i++ {
					w.Data[(c*li.C+c)*k*k+i] = 1 * li.Gain // emitConv divides by Gain
				}
			}
			out, err = lw.emitConv(x, li, lo, w, nil, k, 0)
		case nnir.OpGlobalPool:
			out = lw.emitGlobalSum(x, li)
		case nnir.OpGemm:
			w := in.Args[1].Const.(*tensor.Tensor)
			if in.AttrInt("transB", 0) == 0 {
				w = transpose2(w)
			}
			var bias *tensor.Tensor
			if len(in.Args) == 3 {
				bias = in.Args[2].Const.(*tensor.Tensor)
			}
			// Express the FC layer as a 1x1 convolution over the (C,1,1)
			// channel layout.
			wc := tensor.FromData(w.Data, w.Shape[0], w.Shape[1], 1, 1)
			out, err = lw.emitConv(x, li, lo, wc, bias, 1, 0)
		case nnir.OpRelu:
			bound := in.AttrFloat("bound", opts.DefaultReLUBound)
			out = f.Emit(OpRelu, vt, []*ir.Value{x}, map[string]any{"bound": bound * li.Gain})
		case nnir.OpSigmoid, nnir.OpTanh:
			if li.Gain != 1 {
				return nil, fmt.Errorf("vecir: %s through a pending gain is unsupported", in.Op)
			}
			kind := "sigmoid"
			if in.Op == nnir.OpTanh {
				kind = "tanh"
			}
			bound := in.AttrFloat("bound", opts.DefaultReLUBound)
			out = f.Emit(OpNonlinear, vt, []*ir.Value{x}, map[string]any{"kind": kind, "bound": bound})
		case nnir.OpAdd:
			ly := lays[in.Args[1]]
			if !li.Equal(ly) {
				return nil, fmt.Errorf("vecir: add with mismatched layouts %s vs %s", li, ly)
			}
			out = f.Emit(OpAdd, vt, []*ir.Value{x, vals[in.Args[1]]}, nil)
		case nnir.OpFlatten, nnir.OpReshape:
			if in.Result.Type.Len() != li.C*li.H*li.W {
				return nil, fmt.Errorf("vecir: reshape changing element count unsupported")
			}
			out = x
		default:
			return nil, fmt.Errorf("vecir: cannot lower %q", in.Op)
		}
		if err != nil {
			return nil, fmt.Errorf("vecir: lowering %s: %w", in.Op, err)
		}
		if in.Op == nnir.OpConv || in.Op == nnir.OpGemm {
			// emitConv folds the input gain into its weights.
			lo.Gain = 1
		}
		vals[in.Result] = out
		lays[in.Result] = lo
	}
	f.Ret = vals[src.Ret]
	outLay := lays[src.Ret]
	if f.Ret == nil || outLay == nil {
		return nil, fmt.Errorf("vecir: return value not lowered")
	}
	mod.Attrs["vec.len"] = l
	mod.Attrs["vec.in_layout"] = inLay
	mod.Attrs["vec.out_layout"] = outLay
	if err := ir.VerifyFunc(f); err != nil {
		return nil, err
	}
	return &Result{Module: mod, InLayout: inLay, OutLayout: outLay}, nil
}

type lowering struct {
	f       *ir.Func
	l       int
	vt      ir.Type
	opts    Options
	stubSeq int
}

func (lw *lowering) constVec(name string, v []float64) *ir.Value {
	if lw.opts.AnalysisOnly {
		lw.stubSeq++
		// A unique one-element stub: CSE keys on content, so every mask
		// must stay distinct.
		v = []float64{float64(lw.stubSeq)}
	}
	return lw.f.NewConst(name, lw.vt, v)
}

func (lw *lowering) roll(x *ir.Value, k int) *ir.Value {
	if k == 0 {
		return x
	}
	return lw.f.Emit(OpRoll, lw.vt, []*ir.Value{x}, map[string]any{"k": k})
}

func (lw *lowering) add(a, b *ir.Value) *ir.Value {
	if a == nil {
		return b
	}
	return lw.f.Emit(OpAdd, lw.vt, []*ir.Value{a, b}, nil)
}

func (lw *lowering) mul(a, b *ir.Value) *ir.Value {
	return lw.f.Emit(OpMul, lw.vt, []*ir.Value{a, b}, nil)
}

// emitConv lowers a convolution (stride s, pad p) from layout li to lo.
// Weights are OIHW; the input's pending gain is divided out.
func (lw *lowering) emitConv(x *ir.Value, li, lo *Layout, w, bias *tensor.Tensor, stride, pad int) (*ir.Value, error) {
	cOut, cIn, kh, kw := w.Shape[0], w.Shape[1], w.Shape[2], w.Shape[3]
	if cIn > li.C {
		return nil, fmt.Errorf("vecir: conv consumes %d channels, layout has %d", cIn, li.C)
	}
	mod := func(v int) int {
		v %= lw.l
		if v < 0 {
			v += lw.l
		}
		return v
	}
	// masks[rv][sj] accumulates weights at (output slot + rv).
	masks := map[int]map[int][]float64{}
	addMask := func(rv, sj, slot int, v float64) {
		inner, ok := masks[rv]
		if !ok {
			inner = map[int][]float64{}
			masks[rv] = inner
		}
		m, ok := inner[sj]
		if !ok {
			m = make([]float64, lw.l)
			inner[sj] = m
		}
		m[slot] += v
	}
	for co := 0; co < cOut; co++ {
		bo, pyo, pxo := lo.phase(co)
		for ci := 0; ci < cIn; ci++ {
			bi, pyi, pxi := li.phase(ci)
			rvRaw := (bi-bo)*li.H0*li.W0 + (pyi-pyo)*li.W0 + pxi - pxo
			for ky := 0; ky < kh; ky++ {
				dy := ky - pad
				for kx := 0; kx < kw; kx++ {
					dx := kx - pad
					wv := w.At(co, ci, ky, kx) / li.Gain
					if wv == 0 {
						continue
					}
					sjRaw := dy*li.Sy*li.W0 + dx*li.Sx
					var rv, sj int
					switch lw.opts.convMode() {
					case ConvSpatialGiant:
						// Swapped split: channel displacements become the
						// shared babies, spatial offsets the giants. The
						// roll identity only needs rv+sj ≡ rvRaw+sjRaw
						// (mod l), so the assignment of components to
						// roles is free.
						rv, sj = mod(sjRaw), mod(rvRaw)
					case ConvNaive:
						// One rotation per total offset: fold the channel
						// displacement into the spatial one.
						rv, sj = 0, mod(rvRaw+sjRaw)
					default:
						rv, sj = mod(rvRaw), mod(sjRaw)
					}
					for yo := 0; yo < lo.H; yo++ {
						iy := yo*stride + dy
						if iy < 0 || iy >= li.H {
							continue
						}
						for xo := 0; xo < lo.W; xo++ {
							ix := xo*stride + dx
							if ix < 0 || ix >= li.W {
								continue
							}
							addMask(rv, sj, mod(lo.Slot(co, yo, xo)+rv), wv)
						}
					}
				}
			}
		}
	}

	// Emit: baby rotations shared across all diagonals.
	sjSet := map[int]bool{}
	for _, inner := range masks {
		for sj := range inner {
			sjSet[sj] = true
		}
	}
	babies := map[int]*ir.Value{}
	for _, sj := range sortedKeys(sjSet) {
		babies[sj] = lw.roll(x, sj)
	}
	rvs := make([]int, 0, len(masks))
	for rv := range masks {
		rvs = append(rvs, rv)
	}
	sort.Ints(rvs)
	var acc *ir.Value
	for _, rv := range rvs {
		inner := masks[rv]
		var sum *ir.Value
		for _, sj := range sortedMapKeys(inner) {
			m := lw.constVec(fmt.Sprintf("mask_r%d_s%d", rv, sj), inner[sj])
			sum = lw.add(sum, lw.mul(babies[sj], m))
		}
		if rv != 0 {
			// Masks were laid out at (output slot + rv); the giant
			// rotation brings them home: roll(v, rv)[s] = v[s+rv].
			sum = lw.roll(sum, rv)
		}
		acc = lw.add(acc, sum)
	}
	if acc == nil {
		return nil, fmt.Errorf("vecir: convolution with all-zero weights")
	}
	if bias != nil {
		bv := make([]float64, lw.l)
		for co := 0; co < cOut; co++ {
			for yo := 0; yo < lo.H; yo++ {
				for xo := 0; xo < lo.W; xo++ {
					bv[lo.Slot(co, yo, xo)] += bias.Data[co]
				}
			}
		}
		acc = lw.add(acc, lw.constVec("bias", bv))
	}
	return acc, nil
}

func sortedKeys(m map[int]bool) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

func sortedMapKeys(m map[int][]float64) []int {
	out := make([]int, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	sort.Ints(out)
	return out
}

// emitGlobalSum reduces every channel's spatial extent to position (0,0)
// with a logarithmic rotate-and-add tree (the division by H*W is carried
// in the layout gain).
func (lw *lowering) emitGlobalSum(x *ir.Value, li *Layout) *ir.Value {
	cur := x
	for step := 1; step < li.H; step <<= 1 {
		cur = lw.add(cur, lw.roll(cur, step*li.Sy*li.W0))
	}
	for step := 1; step < li.W; step <<= 1 {
		cur = lw.add(cur, lw.roll(cur, step*li.Sx))
	}
	return cur
}

func transpose2(t *tensor.Tensor) *tensor.Tensor {
	m, n := t.Shape[0], t.Shape[1]
	out := tensor.New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = t.Data[i*n+j]
		}
	}
	return out
}
