package vecir

import (
	"fmt"
	"math"

	"antace/internal/ir"
)

// Run executes a VECTOR IR function on a cleartext slot vector. This is
// the paper's VECTOR-level instrumentation mode: it validates the layout
// and rotation program against the NN reference without any encryption.
func Run(f *ir.Func, input []float64) ([]float64, error) {
	if len(f.Params) != 1 {
		return nil, fmt.Errorf("vecir: executor expects one parameter")
	}
	l := f.Params[0].Type.Len()
	if len(input) != l {
		return nil, fmt.Errorf("vecir: input length %d, want %d", len(input), l)
	}
	env := map[*ir.Value][]float64{f.Params[0]: input}
	get := func(v *ir.Value) ([]float64, error) {
		if v.IsConst() {
			c, ok := v.Const.([]float64)
			if !ok {
				return nil, fmt.Errorf("vecir: constant %s is not a vector", v)
			}
			return c, nil
		}
		x, ok := env[v]
		if !ok {
			return nil, fmt.Errorf("vecir: %s not computed", v)
		}
		return x, nil
	}
	for _, in := range f.Body {
		args := make([][]float64, len(in.Args))
		for i, a := range in.Args {
			v, err := get(a)
			if err != nil {
				return nil, err
			}
			args[i] = v
		}
		out := make([]float64, l)
		switch in.Op {
		case OpAdd:
			for i := range out {
				out[i] = args[0][i] + args[1][i]
			}
		case OpMul:
			for i := range out {
				out[i] = args[0][i] * args[1][i]
			}
		case OpRoll:
			k := in.AttrInt("k", 0)
			for i := range out {
				out[i] = args[0][(i+k)%l]
			}
		case OpRelu:
			for i := range out {
				if args[0][i] > 0 {
					out[i] = args[0][i]
				}
			}
		case OpNonlinear:
			kind, _ := in.Attrs["kind"].(string)
			for i := range out {
				switch kind {
				case "tanh":
					out[i] = math.Tanh(args[0][i])
				default:
					out[i] = 1 / (1 + math.Exp(-args[0][i]))
				}
			}
		default:
			return nil, fmt.Errorf("vecir: unknown op %q", in.Op)
		}
		env[in.Result] = out
	}
	return get(f.Ret)
}

// Stats summarises the homomorphic cost drivers of a VECTOR IR function.
type Stats struct {
	Rotations int
	Mults     int
	Adds      int
	ReLUs     int
	// DistinctRotations counts unique rotation amounts (= Galois keys
	// needed, the paper's key-generation analysis).
	DistinctRotations int
}

// Analyze computes Stats for a function.
func Analyze(f *ir.Func) Stats {
	s := Stats{}
	rot := map[int]bool{}
	for _, in := range f.Body {
		switch in.Op {
		case OpRoll:
			s.Rotations++
			rot[in.AttrInt("k", 0)] = true
		case OpMul:
			s.Mults++
		case OpAdd:
			s.Adds++
		case OpRelu, OpNonlinear:
			s.ReLUs++
		}
	}
	s.DistinctRotations = len(rot)
	return s
}
