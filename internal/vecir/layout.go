// Package vecir implements the VECTOR IR: tensors are lowered onto
// one-dimensional slot vectors using the multiplexed packed layout of
// Lee et al. [35] (channels distributed over blocks and stride phases of
// a fixed base grid), and the NN operators become rotate/multiply/add
// programs. Convolutions use a two-level baby-step/giant-step structure:
// K^2 spatial "baby" rotations shared across all channel pairs, and one
// "giant" rotation per channel diagonal (plus carry variants), which is
// the cross-channel rotation sharing the paper credits for its Conv
// speedups. A naive single-level mode is kept for the Expert baseline
// and ablation benchmarks.
package vecir

import (
	"fmt"
)

// Layout describes how a (C,H,W) tensor is packed into a slot vector of
// length L: the spatial base grid is H0 x W0 (constant across the whole
// network); a tensor downsampled by (Sy,Sx) stores its H=H0/Sy rows at
// stride Sy. Channels are assigned phase c mod (Sy*Sx) within the stride
// grid and block c/(Sy*Sx), each block occupying H0*W0 slots.
//
// Gain records a pending scalar factor: the vector holds Gain * (true
// value); linear consumers fold 1/Gain into their weights (global
// average pooling uses this to defer its division).
type Layout struct {
	C, H, W int
	H0, W0  int
	Sy, Sx  int
	L       int
	Gain    float64
}

// NewInputLayout builds the layout of the network input: channels in
// consecutive blocks at full resolution.
func NewInputLayout(c, h, w, l int) (*Layout, error) {
	if h&(h-1) != 0 || w&(w-1) != 0 {
		return nil, fmt.Errorf("vecir: spatial dims %dx%d must be powers of two", h, w)
	}
	lay := &Layout{C: c, H: h, W: w, H0: h, W0: w, Sy: 1, Sx: 1, L: l, Gain: 1}
	if need := lay.Blocks() * h * w; need > l {
		return nil, fmt.Errorf("vecir: layout needs %d slots, vector has %d", need, l)
	}
	return lay, nil
}

// P returns the phase count Sy*Sx.
func (l *Layout) P() int { return l.Sy * l.Sx }

// Blocks returns the number of base-grid blocks used.
func (l *Layout) Blocks() int { return (l.C + l.P() - 1) / l.P() }

// phase decomposes a channel into (block, py, px).
func (l *Layout) phase(c int) (block, py, px int) {
	p := l.P()
	block = c / p
	ph := c % p
	return block, ph / l.Sx, ph % l.Sx
}

// Slot returns the slot index of element (c, y, x).
func (l *Layout) Slot(c, y, x int) int {
	b, py, px := l.phase(c)
	return b*l.H0*l.W0 + (y*l.Sy+py)*l.W0 + x*l.Sx + px
}

// offset returns the algebraic slot displacement from (co under lo) to
// (ci at spatial offset (dy,dx) under li), reduced mod L. It is
// independent of the output position.
func offset(li *Layout, ci, dy, dx int, lo *Layout, co int) int {
	bi, pyi, pxi := li.phase(ci)
	bo, pyo, pxo := lo.phase(co)
	r := (bi-bo)*li.H0*li.W0 + (dy*li.Sy+pyi-pyo)*li.W0 + dx*li.Sx + pxi - pxo
	r %= li.L
	if r < 0 {
		r += li.L
	}
	return r
}

// Downsample returns the layout after a stride-s spatial reduction with
// cOut channels (phases multiply by s in each axis).
func (l *Layout) Downsample(s, cOut int) (*Layout, error) {
	if l.H%s != 0 || l.W%s != 0 {
		return nil, fmt.Errorf("vecir: stride %d does not divide %dx%d", s, l.H, l.W)
	}
	out := &Layout{
		C: cOut, H: l.H / s, W: l.W / s,
		H0: l.H0, W0: l.W0,
		Sy: l.Sy * s, Sx: l.Sx * s,
		L: l.L, Gain: l.Gain,
	}
	if need := out.Blocks() * l.H0 * l.W0; need > l.L {
		return nil, fmt.Errorf("vecir: downsampled layout needs %d slots, vector has %d", need, l.L)
	}
	return out, nil
}

// WithChannels returns a copy with a different channel count (stride-1
// convolutions changing width).
func (l *Layout) WithChannels(c int) (*Layout, error) {
	out := *l
	out.C = c
	if need := out.Blocks() * l.H0 * l.W0; need > l.L {
		return nil, fmt.Errorf("vecir: layout with %d channels needs %d slots, vector has %d", c, need, l.L)
	}
	return &out, nil
}

// Equal reports structural layout equality (Gain included: additions
// require it).
func (l *Layout) Equal(o *Layout) bool {
	return l.C == o.C && l.H == o.H && l.W == o.W && l.H0 == o.H0 &&
		l.W0 == o.W0 && l.Sy == o.Sy && l.Sx == o.Sx && l.L == o.L && l.Gain == o.Gain
}

func (l *Layout) String() string {
	return fmt.Sprintf("layout{C:%d %dx%d grid:%dx%d stride:%dx%d L:%d gain:%g}", l.C, l.H, l.W, l.H0, l.W0, l.Sy, l.Sx, l.L, l.Gain)
}

// Pack places a (C,H,W) tensor (flattened row-major) into a fresh slot
// vector according to the layout. This is the ANT-ACE-generated
// encryptor's packing step.
func (l *Layout) Pack(data []float64) ([]float64, error) {
	if len(data) != l.C*l.H*l.W {
		return nil, fmt.Errorf("vecir: pack: %d values for %s", len(data), l)
	}
	out := make([]float64, l.L)
	for c := 0; c < l.C; c++ {
		for y := 0; y < l.H; y++ {
			for x := 0; x < l.W; x++ {
				out[l.Slot(c, y, x)] = data[(c*l.H+y)*l.W+x] * l.Gain
			}
		}
	}
	return out, nil
}

// Unpack extracts the logical tensor values from a slot vector (the
// decryptor's unpacking step), dividing out the pending gain.
func (l *Layout) Unpack(v []float64) ([]float64, error) {
	if len(v) != l.L {
		return nil, fmt.Errorf("vecir: unpack: vector length %d, layout wants %d", len(v), l.L)
	}
	out := make([]float64, l.C*l.H*l.W)
	for c := 0; c < l.C; c++ {
		for y := 0; y < l.H; y++ {
			for x := 0; x < l.W; x++ {
				out[(c*l.H+y)*l.W+x] = v[l.Slot(c, y, x)] / l.Gain
			}
		}
	}
	return out, nil
}
