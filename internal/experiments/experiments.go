// Package experiments regenerates every table and figure of the paper's
// evaluation section (§6): Figure 5 (compile times with per-IR
// breakdown), Figure 6 (per-image inference time, ANT-ACE vs Expert,
// split into Conv/Bootstrap/ReLU/Other), Figure 7 (memory with the
// CKKS-keys share), Table 10 (automatically selected security
// parameters) and Table 11 (unencrypted vs encrypted accuracy). The
// headline numbers are produced over the exact compiled schedules; see
// DESIGN.md for the documented substitutions (cost model at full ring
// degree, synthetic dataset).
package experiments

import (
	"fmt"
	"io"
	"math"
	"runtime"
	"time"

	"antace/internal/bootstrap"
	"antace/internal/ckksir"
	"antace/internal/core"
	"antace/internal/costmodel"
	"antace/internal/dataset"
	"antace/internal/onnx"
	"antace/internal/sihe"
	"antace/internal/tensor"
	"antace/internal/train"
	"antace/internal/vecir"
)

// ModelSpec names one evaluated model.
type ModelSpec struct {
	Name    string
	Depth   int
	Classes int
}

// PaperModels returns the six models of the paper's evaluation.
// ResNet-32* is ResNet-32 on CIFAR-100.
func PaperModels() []ModelSpec {
	return []ModelSpec{
		{"ResNet-20", 20, 10},
		{"ResNet-32", 32, 10},
		{"ResNet-32*", 32, 100},
		{"ResNet-44", 44, 10},
		{"ResNet-56", 56, 10},
		{"ResNet-110", 110, 10},
	}
}

// ReducedModels returns CI-sized versions of the same topologies for
// quick runs (8x8 inputs, 4 base channels).
func ReducedModels() []ModelSpec {
	return []ModelSpec{
		{"ResNet-8 (reduced)", 8, 10},
		{"ResNet-14 (reduced)", 14, 10},
	}
}

// Scale selects full paper-scale or reduced CI-scale experiments.
type Scale int

const (
	// ScalePaper compiles the six CIFAR-scale ResNets with the paper's
	// parameter profile (logN=16 chains).
	ScalePaper Scale = iota
	// ScaleReduced uses small inputs and models so the whole suite runs
	// in seconds.
	ScaleReduced
)

// BuildModel constructs a spec's ONNX graph at the given scale.
func BuildModel(spec ModelSpec, scale Scale) (*onnx.Model, error) {
	cfg := onnx.ResNetConfig{Depth: spec.Depth, Classes: spec.Classes}
	if scale == ScaleReduced {
		cfg.InputSize = 8
		cfg.BaseChannels = 4
	}
	return onnx.BuildResNet(cfg)
}

// PaperConfig is the compilation profile reproducing Table 10:
// q0 = 2^60, Delta = 2^56, bootstrap circuit of depth 11, ReLU composite
// with alpha=9, eps=1/8.
func PaperConfig() core.Config {
	return core.Config{
		Vec:  vecir.Options{},
		SIHE: sihe.Options{ReLUAlpha: 9, ReLUEps: 1.0 / 8},
		CKKS: ckksir.Options{
			LogQ0:    60,
			LogScale: 56,
			Mode:     ckksir.BootstrapAlways,
			Boot:     bootstrap.Parameters{EvalModDegree: 24, DoubleAngle: 2},
		},
		SkipPoly: true,
	}
}

// ReducedConfig is the CI-scale profile.
func ReducedConfig() core.Config {
	return core.Config{
		SIHE: sihe.Options{ReLUAlpha: 5, ReLUEps: 0.125},
		CKKS: ckksir.Options{
			LogQ0:          60,
			LogScale:       40,
			Mode:           ckksir.BootstrapAlways,
			IgnoreSecurity: true,
		},
		SkipPoly: true,
	}
}

func configFor(scale Scale, expert bool) core.Config {
	var cfg core.Config
	if scale == ScalePaper {
		cfg = PaperConfig()
		// Paper-scale figures analyse the compiled schedule without
		// executing it; dropping the mask payloads (after building them)
		// keeps the six-model suite within laptop memory.
		cfg.Vec.AnalysisOnly = true
	} else {
		cfg = ReducedConfig()
	}
	cfg.Expert = expert
	return cfg
}

func modelsFor(scale Scale) []ModelSpec {
	if scale == ScalePaper {
		return PaperModels()
	}
	return ReducedModels()
}

// Figure5 compiles every model and prints the per-IR-level compile time
// breakdown.
func Figure5(w io.Writer, scale Scale) error {
	fmt.Fprintln(w, "Figure 5: ANT-ACE compile times (per-IR breakdown)")
	fmt.Fprintf(w, "%-18s %10s   %s\n", "Model", "Total", "NN / VECTOR / SIHE / CKKS / POLY / Others")
	for _, spec := range modelsFor(scale) {
		m, err := BuildModel(spec, scale)
		if err != nil {
			return err
		}
		cfg := configFor(scale, false)
		cfg.SkipPoly = false
		start := time.Now()
		c, err := core.Compile(m, cfg)
		if err != nil {
			return fmt.Errorf("%s: %w", spec.Name, err)
		}
		total := time.Since(start)
		b := c.LevelBreakdown()
		pct := func(level string) float64 {
			return 100 * float64(b[level]) / float64(total)
		}
		fmt.Fprintf(w, "%-18s %10s   %4.1f%% / %4.1f%% / %4.1f%% / %4.1f%% / %4.1f%% / %4.1f%%\n",
			spec.Name, total.Round(time.Millisecond),
			pct("NN"), pct("VECTOR"), pct("SIHE"), pct("CKKS"), pct("POLY"), pct("Others"))
		runtime.GC()
	}
	return nil
}

// Fig6Row is one model's ACE-vs-Expert comparison.
type Fig6Row struct {
	Model   string
	ACE     costmodel.Breakdown
	Expert  costmodel.Breakdown
	Speedup float64
}

// Figure6 compiles each model in both configurations and evaluates the
// calibrated cost model over the compiled schedules.
func Figure6(w io.Writer, scale Scale, cal costmodel.Calibration) ([]Fig6Row, error) {
	return Figure6Spec(w, scale, cal, modelsFor(scale))
}

// Figure6Spec is Figure6 restricted to an explicit model list.
func Figure6Spec(w io.Writer, scale Scale, cal costmodel.Calibration, specs []ModelSpec) ([]Fig6Row, error) {
	fmt.Fprintln(w, "Figure 6: per-image inference time, ANT-ACE (left) vs Expert (right), seconds")
	fmt.Fprintf(w, "%-18s %37s | %37s | %s\n", "Model", "ACE  conv/boot/relu/other (total)", "Expert conv/boot/relu/other (total)", "speedup")
	var rows []Fig6Row
	for _, spec := range specs {
		var row Fig6Row
		row.Model = spec.Name
		for _, expert := range []bool{false, true} {
			m, err := BuildModel(spec, scale)
			if err != nil {
				return nil, err
			}
			c, err := core.Compile(m, configFor(scale, expert))
			if err != nil {
				return nil, fmt.Errorf("%s (expert=%v): %w", spec.Name, expert, err)
			}
			model := &costmodel.Model{Cal: cal, LogN: c.CKKS.Literal.LogN, Alpha: len(c.CKKS.Literal.LogP), K: len(c.CKKS.Literal.LogP)}
			if expert {
				model.BootstrapStages = 2 // coarser hand-written DFT grouping
			}
			bd := model.InferenceCost(c.CKKS)
			if expert {
				row.Expert = bd
			} else {
				row.ACE = bd
			}
			runtime.GC()
		}
		row.Speedup = row.Expert.Total() / row.ACE.Total()
		rows = append(rows, row)
		fmt.Fprintf(w, "%-18s %7.1f/%7.1f/%7.1f/%5.1f (%7.1f) | %7.1f/%7.1f/%7.1f/%5.1f (%7.1f) | %.2fx\n",
			spec.Name,
			row.ACE.Conv, row.ACE.Bootstrap, row.ACE.ReLU, row.ACE.Other, row.ACE.Total(),
			row.Expert.Conv, row.Expert.Bootstrap, row.Expert.ReLU, row.Expert.Other, row.Expert.Total(),
			row.Speedup)
	}
	if len(rows) > 0 {
		gm := 1.0
		for _, r := range rows {
			gm *= r.Speedup
		}
		fmt.Fprintf(w, "geometric-mean speedup: %.2fx (paper: 2.24x)\n", math.Pow(gm, 1/float64(len(rows))))
	}
	return rows, nil
}

// Fig7Row is one model's memory comparison.
type Fig7Row struct {
	Model    string
	ACE      costmodel.Memory
	Expert   costmodel.Memory
	ACEKeys  int
	ExpKeys  int
	Saving   float64 // fraction of Expert memory saved
	KeyShare float64 // ACE CKKS-keys share
}

// bootstrapRotationCount estimates the Galois keys the bootstrap circuit
// needs: BSGS over a dense slots-diagonal transform.
func bootstrapRotationCount(slots int) int {
	n1 := 1
	for n1*n1 < slots {
		n1 <<= 1
	}
	return n1 + slots/n1
}

// Figure7 compares server memory (keys + encoded weights + working set).
func Figure7(w io.Writer, scale Scale, cal costmodel.Calibration) ([]Fig7Row, error) {
	fmt.Fprintln(w, "Figure 7: memory usage, ANT-ACE (left) vs Expert (right), GB")
	fmt.Fprintf(w, "%-18s %10s %9s | %10s %9s | %8s %s\n", "Model", "ACE", "keys%", "Expert", "keys%", "saving", "keys ACE/Expert")
	var rows []Fig7Row
	for _, spec := range modelsFor(scale) {
		var row Fig7Row
		row.Model = spec.Name
		var mems [2]costmodel.Memory
		var keys [2]int
		for i, expert := range []bool{false, true} {
			m, err := BuildModel(spec, scale)
			if err != nil {
				return nil, err
			}
			c, err := core.Compile(m, configFor(scale, expert))
			if err != nil {
				return nil, err
			}
			slots := 1 << (c.CKKS.Literal.LogN - 1)
			bootKeys := 0
			if c.CKKS.Bootstraps > 0 {
				bootKeys = bootstrapRotationCount(slots)
			}
			model := &costmodel.Model{Cal: cal, LogN: c.CKKS.Literal.LogN, Alpha: len(c.CKKS.Literal.LogP), K: len(c.CKKS.Literal.LogP)}
			// ANT-ACE truncates each key to the level its rotation is used
			// at (data-flow key analysis); the baseline generates every
			// key over the full chain.
			mems[i] = model.MemoryCost(c.CKKS, bootKeys, !expert)
			keys[i] = len(c.CKKS.Rotations) + bootKeys + 1
			runtime.GC()
		}
		row.ACE, row.Expert = mems[0], mems[1]
		row.ACEKeys, row.ExpKeys = keys[0], keys[1]
		row.Saving = 1 - row.ACE.Total()/row.Expert.Total()
		row.KeyShare = row.ACE.KeyShare()
		rows = append(rows, row)
		const gb = 1e9
		fmt.Fprintf(w, "%-18s %9.1f %8.1f%% | %9.1f %8.1f%% | %7.1f%% %d/%d\n",
			spec.Name, row.ACE.Total()/gb, 100*row.KeyShare,
			row.Expert.Total()/gb, 100*row.Expert.KeyShare(),
			100*row.Saving, row.ACEKeys, row.ExpKeys)
	}
	return rows, nil
}

// Tab10Row is one row of the security parameter table.
type Tab10Row struct {
	Model                 string
	LogN, LogQ0, LogScale int
	Levels, Bootstraps    int
	SecurityOK            bool
}

// Table10 prints the automatically selected security parameters.
func Table10(w io.Writer, scale Scale) ([]Tab10Row, error) {
	fmt.Fprintln(w, "Table 10: security parameters selected automatically")
	fmt.Fprintf(w, "%-18s %8s %9s %9s %8s %6s\n", "Model", "log2(N)", "log2(Q0)", "log2(D)", "levels", "128bit")
	var rows []Tab10Row
	for _, spec := range modelsFor(scale) {
		m, err := BuildModel(spec, scale)
		if err != nil {
			return nil, err
		}
		c, err := core.Compile(m, configFor(scale, false))
		if err != nil {
			return nil, err
		}
		lit := c.CKKS.Literal
		row := Tab10Row{
			Model: spec.Name, LogN: lit.LogN, LogQ0: lit.LogQ[0], LogScale: lit.LogScale,
			Levels: len(lit.LogQ), Bootstraps: c.CKKS.Bootstraps,
			SecurityOK: scale == ScalePaper,
		}
		rows = append(rows, row)
		fmt.Fprintf(w, "%-18s %8d %9d %9d %8d %6v\n", spec.Name, row.LogN, row.LogQ0, row.LogScale, row.Levels, row.SecurityOK)
		runtime.GC()
	}
	return rows, nil
}

// Tab11Row is one accuracy comparison row.
type Tab11Row struct {
	Model       string
	Unencrypted float64
	Encrypted   float64
	Loss        float64
}

// Table11 trains the small CNN on the synthetic dataset, then measures
// unencrypted (plaintext reference) vs encrypted (SIHE simulator with
// the compiled polynomial approximations) top-1 accuracy over `images`
// samples, and adds agreement rows for reduced ResNet topologies.
func Table11(w io.Writer, images int, resnetImages int) ([]Tab11Row, error) {
	fmt.Fprintln(w, "Table 11: inference accuracy, unencrypted vs encrypted")
	fmt.Fprintf(w, "%-22s %12s %10s %7s\n", "Model", "Unencrypted", "Encrypted", "Loss")
	var rows []Tab11Row

	// Trained small CNN.
	ds, err := dataset.New(dataset.Config{Classes: 4, Size: 8, Seed: 2, NoiseSigma: 0.45})
	if err != nil {
		return nil, err
	}
	tm := train.NewModel(train.Config{InputSize: 8, Channels: 8, Classes: 4, Epochs: 10, BatchesPerEpoch: 40, LearningRate: 0.1, Seed: 2})
	if _, err := tm.Train(ds); err != nil {
		return nil, err
	}
	model, err := onnx.BuildSmallCNN(onnx.SmallCNNConfig{InputSize: 8, InputChannels: 1, Channels: 8, Classes: 4, Weights: tm.Weights()})
	if err != nil {
		return nil, err
	}
	cfg := ReducedConfig()
	cfg.SIHE = sihe.Options{ReLUAlpha: 9, ReLUEps: 1.0 / 32}
	c, err := core.Compile(model, cfg)
	if err != nil {
		return nil, err
	}
	samples := ds.Batch(images, 424242)
	correctPlain, correctEnc := 0, 0
	for _, s := range samples {
		p, err := c.RunPlain(s.Image)
		if err != nil {
			return nil, err
		}
		if tensor.ArgMax(p) == s.Label {
			correctPlain++
		}
		e, err := c.RunSim(s.Image)
		if err != nil {
			return nil, err
		}
		if tensor.ArgMax(e) == s.Label {
			correctEnc++
		}
	}
	row := Tab11Row{
		Model:       "SmallCNN (trained)",
		Unencrypted: float64(correctPlain) / float64(len(samples)),
		Encrypted:   float64(correctEnc) / float64(len(samples)),
	}
	row.Loss = row.Unencrypted - row.Encrypted
	rows = append(rows, row)
	fmt.Fprintf(w, "%-22s %11.1f%% %9.1f%% %6.1f%%\n", row.Model, 100*row.Unencrypted, 100*row.Encrypted, 100*row.Loss)

	// ResNet agreement rows: top-1 agreement between the plaintext
	// reference and the encrypted-arithmetic simulator on the same
	// inputs (the channel Table 11 measures, without the training
	// pipeline; see DESIGN.md substitution #2).
	for _, spec := range ReducedModels() {
		m, err := BuildModel(spec, ScaleReduced)
		if err != nil {
			return nil, err
		}
		cr, err := core.Compile(m, ReducedConfig())
		if err != nil {
			return nil, err
		}
		agree := 0
		for i := 0; i < resnetImages; i++ {
			img := randomImage([]int{1, 3, 8, 8}, uint64(1000+i))
			p, err := cr.RunPlain(img)
			if err != nil {
				return nil, err
			}
			e, err := cr.RunSim(img)
			if err != nil {
				return nil, err
			}
			if tensor.ArgMax(p) == tensor.ArgMax(e) {
				agree++
			}
		}
		row := Tab11Row{
			Model:       spec.Name + " (agreement)",
			Unencrypted: 1,
			Encrypted:   float64(agree) / float64(resnetImages),
		}
		row.Loss = row.Unencrypted - row.Encrypted
		rows = append(rows, row)
		fmt.Fprintf(w, "%-22s %11.1f%% %9.1f%% %6.1f%%\n", row.Model, 100*row.Unencrypted, 100*row.Encrypted, 100*row.Loss)
		runtime.GC()
	}
	return rows, nil
}

func randomImage(shape []int, seed uint64) *tensor.Tensor {
	t := tensor.New(shape...)
	// xorshift-style deterministic fill (rand/v2 unavailable here to
	// keep the stream stable across Go versions).
	x := seed*2654435761 + 1
	for i := range t.Data {
		x ^= x << 13
		x ^= x >> 7
		x ^= x << 17
		t.Data[i] = float64(int64(x%2000)-1000) / 1000
	}
	return t
}
