package experiments

import (
	"bytes"
	"strings"
	"testing"

	"antace/internal/costmodel"
)

func TestFigure5Reduced(t *testing.T) {
	var buf bytes.Buffer
	if err := Figure5(&buf, ScaleReduced); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if !strings.Contains(out, "ResNet-8") || !strings.Contains(out, "VECTOR") {
		t.Fatalf("unexpected output:\n%s", out)
	}
}

func TestFigure6ReducedShape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Figure6(&buf, ScaleReduced, costmodel.DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Speedup <= 1 {
			t.Fatalf("%s: ACE not faster than Expert (%.2fx)", r.Model, r.Speedup)
		}
		if r.ACE.Bootstrap >= r.Expert.Bootstrap {
			t.Fatalf("%s: bootstrap not improved", r.Model)
		}
	}
}

func TestFigure7ReducedShape(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Figure7(&buf, ScaleReduced, costmodel.DefaultCalibration())
	if err != nil {
		t.Fatal(err)
	}
	for _, r := range rows {
		if r.Saving <= 0 {
			t.Fatalf("%s: no memory saving (%.2f)", r.Model, r.Saving)
		}
		if r.KeyShare <= 0.3 {
			t.Fatalf("%s: keys should dominate memory, share %.2f", r.Model, r.KeyShare)
		}
	}
}

func TestTable10Reduced(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table10(&buf, ScaleReduced)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) == 0 {
		t.Fatal("no rows")
	}
	for _, r := range rows {
		if r.LogQ0 != 60 {
			t.Fatalf("logQ0 %d", r.LogQ0)
		}
		if r.Bootstraps == 0 {
			t.Fatalf("%s: expected bootstraps", r.Model)
		}
	}
}

func TestTable11Small(t *testing.T) {
	var buf bytes.Buffer
	rows, err := Table11(&buf, 60, 10)
	if err != nil {
		t.Fatal(err)
	}
	cnn := rows[0]
	if cnn.Unencrypted < 0.7 {
		t.Fatalf("trained accuracy %.2f too low", cnn.Unencrypted)
	}
	if cnn.Loss > 0.1 || cnn.Loss < -0.1 {
		t.Fatalf("encrypted accuracy loss %.2f out of band", cnn.Loss)
	}
	for _, r := range rows[1:] {
		if r.Encrypted < 0.8 {
			t.Fatalf("%s agreement %.2f too low", r.Model, r.Encrypted)
		}
	}
}
