package nnir

import (
	"math"
	"math/rand/v2"
	"testing"

	"antace/internal/ir"
	"antace/internal/onnx"
	"antace/internal/tensor"
)

func randImage(shape []int, seed uint64) *tensor.Tensor {
	rng := rand.New(rand.NewPCG(seed, 99))
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = rng.Float64()*2 - 1
	}
	return t
}

func TestImportLinearMatchesGemm(t *testing.T) {
	m, err := onnx.BuildLinear(84, 10, 3)
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Import(m)
	if err != nil {
		t.Fatal(err)
	}
	f := mod.Main()
	if got := f.InstrCount("nn.gemm"); got != 1 {
		t.Fatalf("gemm count %d", got)
	}
	x := randImage([]int{1, 84}, 1)
	out, err := Run(f, map[string]*tensor.Tensor{"image": x})
	if err != nil {
		t.Fatal(err)
	}
	// Direct reference.
	w, _ := m.Graph.Initializer("fc.weight").ToTensor()
	b, _ := m.Graph.Initializer("fc.bias").ToTensor()
	for k := 0; k < 10; k++ {
		want := b.Data[k]
		for j := 0; j < 84; j++ {
			want += x.Data[j] * w.At(k, j)
		}
		if math.Abs(out.Data[k]-want) > 1e-9 {
			t.Fatalf("output %d: got %g want %g", k, out.Data[k], want)
		}
	}
}

func TestImportSmallCNNShapes(t *testing.T) {
	m, err := onnx.BuildSmallCNN(onnx.SmallCNNConfig{InputSize: 8, Channels: 4, Classes: 5})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Import(m)
	if err != nil {
		t.Fatal(err)
	}
	f := mod.Main()
	if f.Ret.Type.Shape[1] != 5 {
		t.Fatalf("output type %s", f.Ret.Type)
	}
	out, err := Run(f, map[string]*tensor.Tensor{"image": randImage([]int{1, 1, 8, 8}, 2)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 5 {
		t.Fatalf("output size %d", out.Size())
	}
}

func TestImportResNetRuns(t *testing.T) {
	m, err := onnx.BuildResNet(onnx.ResNetConfig{Depth: 8, BaseChannels: 4, InputSize: 8, Classes: 10})
	if err != nil {
		t.Fatal(err)
	}
	mod, err := Import(m)
	if err != nil {
		t.Fatal(err)
	}
	out, err := Run(mod.Main(), map[string]*tensor.Tensor{"image": randImage([]int{1, 3, 8, 8}, 3)})
	if err != nil {
		t.Fatal(err)
	}
	if out.Size() != 10 {
		t.Fatalf("output size %d", out.Size())
	}
}

func TestFuseConvBatchNormPreservesSemantics(t *testing.T) {
	m, err := onnx.BuildResNet(onnx.ResNetConfig{Depth: 8, BaseChannels: 4, InputSize: 8, Classes: 10, Seed: 9})
	if err != nil {
		t.Fatal(err)
	}
	x := randImage([]int{1, 3, 8, 8}, 4)

	mod1, err := Import(m)
	if err != nil {
		t.Fatal(err)
	}
	want, err := Run(mod1.Main(), map[string]*tensor.Tensor{"image": x})
	if err != nil {
		t.Fatal(err)
	}

	mod2, err := Import(m)
	if err != nil {
		t.Fatal(err)
	}
	bnBefore := mod2.Main().InstrCount("nn.batch_norm")
	if bnBefore == 0 {
		t.Fatal("test model has no batch norms")
	}
	pm := &ir.PassManager{}
	pm.Add(FuseConvBatchNorm(), ir.DCE())
	if err := pm.Run(mod2); err != nil {
		t.Fatal(err)
	}
	if got := mod2.Main().InstrCount("nn.batch_norm"); got != 0 {
		t.Fatalf("%d batch norms survive fusion", got)
	}
	if err := ir.VerifyFunc(mod2.Main()); err != nil {
		t.Fatal(err)
	}
	got, err := Run(mod2.Main(), map[string]*tensor.Tensor{"image": x})
	if err != nil {
		t.Fatal(err)
	}
	for i := range want.Data {
		if math.Abs(got.Data[i]-want.Data[i]) > 1e-9 {
			t.Fatalf("fusion changed output %d: %g vs %g", i, got.Data[i], want.Data[i])
		}
	}
}

func TestImportRejectsUnsupported(t *testing.T) {
	b := onnx.NewBuilder("bad")
	x := b.Input("x", 1, 4)
	y := b.Node("LSTM", []string{x})
	b.Output(y, 1, 4)
	if _, err := Import(b.Model()); err == nil {
		t.Fatal("expected unsupported-operator error")
	}

	b2 := onnx.NewBuilder("batch")
	x2 := b2.Input("x", 2, 4)
	y2 := b2.Node("Relu", []string{x2})
	b2.Output(y2, 2, 4)
	if _, err := Import(b2.Model()); err == nil {
		t.Fatal("expected batch-size error")
	}
}

func TestRunMissingInput(t *testing.T) {
	m, _ := onnx.BuildLinear(8, 2, 1)
	mod, err := Import(m)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Run(mod.Main(), nil); err == nil {
		t.Fatal("expected missing-input error")
	}
}

func TestPassManagerTimings(t *testing.T) {
	m, _ := onnx.BuildLinear(8, 2, 1)
	mod, _ := Import(m)
	pm := &ir.PassManager{}
	pm.Add(FuseConvBatchNorm(), ir.CSE(), ir.DCE())
	if err := pm.Run(mod); err != nil {
		t.Fatal(err)
	}
	if len(pm.Timings) != 3 {
		t.Fatalf("%d timings", len(pm.Timings))
	}
	breakdown := pm.LevelBreakdown()
	if _, ok := breakdown["NN"]; !ok {
		t.Fatal("NN level missing from breakdown")
	}
}
