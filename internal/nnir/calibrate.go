package nnir

import (
	"fmt"
	"math"
	"math/rand/v2"

	"antace/internal/ir"
	"antace/internal/tensor"
)

// RunWithHook executes the function like Run, additionally invoking the
// hook with every instruction's input tensor (used by calibration).
func RunWithHook(f *ir.Func, inputs map[string]*tensor.Tensor, hook func(*ir.Instr, []*tensor.Tensor)) (*tensor.Tensor, error) {
	env := map[*ir.Value]*tensor.Tensor{}
	for _, p := range f.Params {
		in, ok := inputs[p.Name]
		if !ok {
			return nil, fmt.Errorf("nnir: missing input %q", p.Name)
		}
		env[p] = in
	}
	saved := f.Body
	for _, in := range saved {
		args := make([]*tensor.Tensor, len(in.Args))
		for i, a := range in.Args {
			if a.IsConst() {
				args[i] = a.Const.(*tensor.Tensor)
			} else {
				args[i] = env[a]
			}
		}
		if hook != nil {
			hook(in, args)
		}
		out, err := runOne(in, args)
		if err != nil {
			return nil, err
		}
		env[in.Result] = out
	}
	out, ok := env[f.Ret]
	if !ok {
		if f.Ret.IsConst() {
			return f.Ret.Const.(*tensor.Tensor), nil
		}
		return nil, fmt.Errorf("nnir: return value not computed")
	}
	return out, nil
}

// runOne dispatches a single instruction (shared with Run's semantics).
func runOne(in *ir.Instr, args []*tensor.Tensor) (*tensor.Tensor, error) {
	switch in.Op {
	case OpConv:
		var bias *tensor.Tensor
		if len(args) == 3 {
			bias = args[2]
		}
		return tensor.Conv2D(args[0], args[1], bias, in.AttrInt("stride", 1), in.AttrInt("pad", 0))
	case OpGemm:
		w := args[1]
		if in.AttrInt("transB", 0) == 1 {
			w = transpose(w)
		}
		var bias *tensor.Tensor
		if len(args) == 3 {
			bias = args[2]
		}
		return tensor.Gemm(args[0], w, bias, 1, 1)
	case OpRelu:
		return tensor.ReLU(args[0]), nil
	case OpSigmoid:
		return tensor.Sigmoid(args[0]), nil
	case OpTanh:
		return tensor.Tanh(args[0]), nil
	case OpAdd:
		return tensor.Add(args[0], args[1])
	case OpBatchNorm:
		return tensor.BatchNorm(args[0], args[1], args[2], args[3], args[4], in.AttrFloat("eps", 1e-5))
	case OpAvgPool:
		return tensor.AveragePool2D(args[0], in.AttrInt("kernel", 1), in.AttrInt("stride", 1))
	case OpGlobalPool:
		return tensor.GlobalAveragePool2D(args[0])
	case OpFlatten:
		return args[0].Flatten(), nil
	case OpReshape:
		return args[0].Reshape(in.AttrInts("shape")...)
	case OpSlice:
		return tensor.StridedSlice(args[0], in.AttrInts("start"), in.AttrInts("size"), in.AttrInts("stride"))
	}
	return nil, fmt.Errorf("nnir: unknown op %q", in.Op)
}

// CalibrateReLUBounds runs the network on `samples` random inputs drawn
// uniformly from [-1,1] and attaches a "bound" attribute to every
// nn.relu instruction: headroom times the largest |input| observed. The
// SIHE lowering uses the bound to scale its sign approximation, and the
// bootstrap normalisation relies on it to keep values within the
// refreshable range.
func CalibrateReLUBounds(f *ir.Func, samples int, headroom float64, seed uint64) error {
	if headroom <= 1 {
		headroom = 1.5
	}
	if samples <= 0 {
		samples = 4
	}
	maxes := map[*ir.Instr]float64{}
	rng := rand.New(rand.NewPCG(seed, 0xCA11B))
	inShape := f.Params[0].Type.Shape
	for s := 0; s < samples; s++ {
		x := tensor.New(inShape...)
		for i := range x.Data {
			x.Data[i] = rng.Float64()*2 - 1
		}
		_, err := RunWithHook(f, map[string]*tensor.Tensor{f.Params[0].Name: x}, func(in *ir.Instr, args []*tensor.Tensor) {
			if in.Op != OpRelu && in.Op != OpSigmoid && in.Op != OpTanh {
				return
			}
			for _, v := range args[0].Data {
				if a := math.Abs(v); a > maxes[in] {
					maxes[in] = a
				}
			}
		})
		if err != nil {
			return err
		}
	}
	for in, m := range maxes {
		bound := m * headroom
		if bound < 1 {
			bound = 1
		}
		// Round up to limit the number of distinct sign composites.
		bound = math.Exp2(math.Ceil(math.Log2(bound)))
		if in.Attrs == nil {
			in.Attrs = map[string]any{}
		}
		in.Attrs["bound"] = bound
	}
	return nil
}
