package nnir

import (
	"fmt"
	"math"

	"antace/internal/ir"
	"antace/internal/tensor"
)

// Run executes an NN IR function on plaintext tensors (the reference
// semantics for all lower IR levels, and the "unencrypted" side of the
// paper's Table 11).
func Run(f *ir.Func, inputs map[string]*tensor.Tensor) (*tensor.Tensor, error) {
	env := map[*ir.Value]*tensor.Tensor{}
	for _, p := range f.Params {
		in, ok := inputs[p.Name]
		if !ok {
			return nil, fmt.Errorf("nnir: missing input %q", p.Name)
		}
		env[p] = in
	}
	get := func(v *ir.Value) (*tensor.Tensor, error) {
		if v.IsConst() {
			t, ok := v.Const.(*tensor.Tensor)
			if !ok {
				return nil, fmt.Errorf("nnir: constant %s is not a tensor", v)
			}
			return t, nil
		}
		t, ok := env[v]
		if !ok {
			return nil, fmt.Errorf("nnir: value %s not computed", v)
		}
		return t, nil
	}
	for _, in := range f.Body {
		args := make([]*tensor.Tensor, len(in.Args))
		for i, a := range in.Args {
			t, err := get(a)
			if err != nil {
				return nil, err
			}
			args[i] = t
		}
		var out *tensor.Tensor
		var err error
		switch in.Op {
		case OpConv:
			var bias *tensor.Tensor
			if len(args) == 3 {
				bias = args[2]
			}
			out, err = tensor.Conv2D(args[0], args[1], bias, in.AttrInt("stride", 1), in.AttrInt("pad", 0))
		case OpGemm:
			w := args[1]
			if in.AttrInt("transB", 0) == 1 {
				w = transpose(w)
			}
			var bias *tensor.Tensor
			if len(args) == 3 {
				bias = args[2]
			}
			out, err = tensor.Gemm(args[0], w, bias, 1, 1)
		case OpRelu:
			out = tensor.ReLU(args[0])
		case OpSigmoid:
			out = tensor.Sigmoid(args[0])
		case OpTanh:
			out = tensor.Tanh(args[0])
		case OpAdd:
			out, err = tensor.Add(args[0], args[1])
		case OpBatchNorm:
			out, err = tensor.BatchNorm(args[0], args[1], args[2], args[3], args[4], in.AttrFloat("eps", 1e-5))
		case OpAvgPool:
			out, err = tensor.AveragePool2D(args[0], in.AttrInt("kernel", 1), in.AttrInt("stride", 1))
		case OpGlobalPool:
			out, err = tensor.GlobalAveragePool2D(args[0])
		case OpFlatten:
			out = args[0].Flatten()
		case OpReshape:
			out, err = args[0].Reshape(in.AttrInts("shape")...)
		case OpSlice:
			out, err = tensor.StridedSlice(args[0], in.AttrInts("start"), in.AttrInts("size"), in.AttrInts("stride"))
		default:
			return nil, fmt.Errorf("nnir: unknown op %q", in.Op)
		}
		if err != nil {
			return nil, fmt.Errorf("nnir: %s: %w", in.Op, err)
		}
		env[in.Result] = out
	}
	return get(f.Ret)
}

func transpose(t *tensor.Tensor) *tensor.Tensor {
	m, n := t.Shape[0], t.Shape[1]
	out := tensor.New(n, m)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			out.Data[j*m+i] = t.Data[i*n+j]
		}
	}
	return out
}

// FuseConvBatchNorm folds every batch_norm that directly follows a conv
// into the convolution's weights and bias (the NN IR's operator fusion
// from Table 2). It also absorbs standalone batch_norms into an
// equivalent 1x1 depthwise conv-free affine pair is NOT attempted: ONNX
// exports of the supported model families always place BN after conv.
func FuseConvBatchNorm() ir.Pass {
	return ir.FuncPass{PassName: "nn-fuse-conv-bn", PassLevel: "NN", Fn: func(f *ir.Func) error {
		uses := countUses(f)
		replaced := map[*ir.Value]*ir.Value{}
		var kept []*ir.Instr
		for _, in := range f.Body {
			for i, a := range in.Args {
				if r, ok := replaced[a]; ok {
					in.Args[i] = r
				}
			}
			if in.Op != OpBatchNorm {
				kept = append(kept, in)
				continue
			}
			src := in.Args[0]
			if src.Def == nil || src.Def.Op != OpConv || uses[src] != 1 {
				kept = append(kept, in)
				continue
			}
			conv := src.Def
			w, ok1 := conv.Args[1].Const.(*tensor.Tensor)
			gamma, ok2 := in.Args[1].Const.(*tensor.Tensor)
			beta, ok3 := in.Args[2].Const.(*tensor.Tensor)
			mean, ok4 := in.Args[3].Const.(*tensor.Tensor)
			variance, ok5 := in.Args[4].Const.(*tensor.Tensor)
			if !(ok1 && ok2 && ok3 && ok4 && ok5) {
				kept = append(kept, in)
				continue
			}
			eps := in.AttrFloat("eps", 1e-5)
			cOut := w.Shape[0]
			perOut := w.Size() / cOut
			newW := w.Clone()
			newB := tensor.New(cOut)
			if len(conv.Args) == 3 {
				if old, ok := conv.Args[2].Const.(*tensor.Tensor); ok {
					copy(newB.Data, old.Data)
				}
			}
			for co := 0; co < cOut; co++ {
				scale := gamma.Data[co] / math.Sqrt(variance.Data[co]+eps)
				for i := 0; i < perOut; i++ {
					newW.Data[co*perOut+i] *= scale
				}
				newB.Data[co] = (newB.Data[co]-mean.Data[co])*scale + beta.Data[co]
			}
			wVal := f.NewConst(conv.Args[1].Name+".fused", ir.TensorType(newW.Shape...), newW)
			bVal := f.NewConst(conv.Args[1].Name+".fused_bias", ir.TensorType(cOut), newB)
			fused := &ir.Instr{
				Op:     OpConv,
				Args:   []*ir.Value{conv.Args[0], wVal, bVal},
				Attrs:  conv.Attrs,
				Result: in.Result,
			}
			in.Result.Def = fused
			// Drop the original conv from the kept list (it was appended
			// earlier) and substitute the fused instruction.
			for i := len(kept) - 1; i >= 0; i-- {
				if kept[i] == conv {
					kept = append(kept[:i], kept[i+1:]...)
					break
				}
			}
			kept = append(kept, fused)
			replaced[src] = in.Result
			_ = replaced
		}
		f.Body = kept
		return nil
	}}
}

func countUses(f *ir.Func) map[*ir.Value]int {
	uses := map[*ir.Value]int{}
	for _, in := range f.Body {
		for _, a := range in.Args {
			uses[a]++
		}
	}
	if f.Ret != nil {
		uses[f.Ret]++
	}
	return uses
}
