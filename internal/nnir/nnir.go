// Package nnir implements the NN IR, the first abstraction level of the
// compiler: a tensor-typed mirror of the ONNX graph. It provides the
// ONNX importer (with shape inference), the operator fusion pass
// (conv+batchnorm folding), and a reference executor used both for
// unencrypted inference and for validating every lowering below it.
package nnir

import (
	"fmt"

	"antace/internal/ir"
	"antace/internal/onnx"
	"antace/internal/tensor"
)

// Op names.
const (
	OpConv       = "nn.conv"
	OpGemm       = "nn.gemm"
	OpRelu       = "nn.relu"
	OpSigmoid    = "nn.sigmoid"
	OpTanh       = "nn.tanh"
	OpAdd        = "nn.add"
	OpBatchNorm  = "nn.batch_norm"
	OpAvgPool    = "nn.average_pool"
	OpGlobalPool = "nn.global_average_pool"
	OpFlatten    = "nn.flatten"
	OpReshape    = "nn.reshape"
	OpSlice      = "nn.strided_slice"
)

func init() {
	T := []ir.Kind{ir.KindTensor}
	reg := func(name string, argKinds int, minArgs int, attrs ...string) {
		args := make([][]ir.Kind, argKinds)
		for i := range args {
			args[i] = T
		}
		ir.RegisterOp(ir.OpSpec{Name: name, Args: args, MinArgs: minArgs, Result: ir.KindTensor, RequiredAttrs: attrs})
	}
	reg(OpConv, 3, 2, "stride", "pad")
	reg(OpGemm, 3, 2)
	reg(OpRelu, 1, 0)
	reg(OpSigmoid, 1, 0)
	reg(OpTanh, 1, 0)
	reg(OpAdd, 2, 0)
	reg(OpBatchNorm, 5, 0, "eps")
	reg(OpAvgPool, 1, 0, "kernel", "stride")
	reg(OpGlobalPool, 1, 0)
	reg(OpFlatten, 1, 0)
	reg(OpReshape, 1, 0, "shape")
	reg(OpSlice, 1, 0, "start", "size", "stride")
}

// Import converts an ONNX model into an NN IR module, running shape
// inference along the way. Only batch size 1 is supported (the paper's
// deployment model encrypts one image per ciphertext set).
func Import(m *onnx.Model) (*ir.Module, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	g := m.Graph
	mod := ir.NewModule(g.Name)
	f := mod.NewFunc(g.Name)

	values := map[string]*ir.Value{}
	consts := map[string]*tensor.Tensor{}
	for _, init := range g.Initializers {
		t, err := init.ToTensor()
		if err != nil {
			return nil, err
		}
		consts[init.Name] = t
		values[init.Name] = f.NewConst(init.Name, ir.TensorType(t.Shape...), t)
	}
	for _, in := range g.Inputs {
		if values[in.Name] != nil {
			continue // initializer doubling as input
		}
		shape := make([]int, len(in.Shape))
		for i, d := range in.Shape {
			if d <= 0 {
				return nil, fmt.Errorf("nnir: input %q has dynamic dimension", in.Name)
			}
			shape[i] = int(d)
		}
		if len(shape) > 0 && shape[0] != 1 {
			return nil, fmt.Errorf("nnir: input %q has batch size %d; only 1 is supported", in.Name, shape[0])
		}
		values[in.Name] = f.NewParam(in.Name, ir.TensorType(shape...))
	}

	arg := func(n *onnx.Node, i int) (*ir.Value, error) {
		if i >= len(n.Inputs) || n.Inputs[i] == "" {
			return nil, nil
		}
		v, ok := values[n.Inputs[i]]
		if !ok {
			return nil, fmt.Errorf("nnir: node %s consumes unknown value %q", n.OpType, n.Inputs[i])
		}
		return v, nil
	}

	for _, n := range g.Nodes {
		var out *ir.Value
		x, err := arg(n, 0)
		if err != nil {
			return nil, err
		}
		switch n.OpType {
		case "Conv":
			w, err := arg(n, 1)
			if err != nil {
				return nil, err
			}
			bias, err := arg(n, 2)
			if err != nil {
				return nil, err
			}
			strides := n.AttrInts("strides", []int64{1, 1})
			pads := n.AttrInts("pads", []int64{0, 0, 0, 0})
			if len(strides) == 2 && strides[0] != strides[1] {
				return nil, fmt.Errorf("nnir: anisotropic strides unsupported")
			}
			stride, pad := int(strides[0]), int(pads[0])
			shape, err := convShape(x.Type.Shape, w.Type.Shape, stride, pad)
			if err != nil {
				return nil, err
			}
			args := []*ir.Value{x, w}
			if bias != nil {
				args = append(args, bias)
			}
			out = f.Emit(OpConv, ir.TensorType(shape...), args, map[string]any{"stride": stride, "pad": pad})
		case "Gemm":
			w, err := arg(n, 1)
			if err != nil {
				return nil, err
			}
			bias, err := arg(n, 2)
			if err != nil {
				return nil, err
			}
			transB := int(n.AttrInt("transB", 0))
			if n.AttrInt("transA", 0) != 0 {
				return nil, fmt.Errorf("nnir: Gemm transA unsupported")
			}
			mRows := x.Type.Shape[0]
			var nCols int
			if transB == 1 {
				nCols = w.Type.Shape[0]
			} else {
				nCols = w.Type.Shape[1]
			}
			args := []*ir.Value{x, w}
			if bias != nil {
				args = append(args, bias)
			}
			out = f.Emit(OpGemm, ir.TensorType(mRows, nCols), args, map[string]any{"transB": transB})
		case "Relu":
			out = f.Emit(OpRelu, x.Type, []*ir.Value{x}, nil)
		case "Sigmoid":
			out = f.Emit(OpSigmoid, x.Type, []*ir.Value{x}, nil)
		case "Tanh":
			out = f.Emit(OpTanh, x.Type, []*ir.Value{x}, nil)
		case "Add":
			y, err := arg(n, 1)
			if err != nil {
				return nil, err
			}
			if !x.Type.Equal(y.Type) {
				return nil, fmt.Errorf("nnir: Add shape mismatch %s vs %s", x.Type, y.Type)
			}
			out = f.Emit(OpAdd, x.Type, []*ir.Value{x, y}, nil)
		case "BatchNormalization":
			var params []*ir.Value
			for i := 1; i <= 4; i++ {
				p, err := arg(n, i)
				if err != nil {
					return nil, err
				}
				if p == nil {
					return nil, fmt.Errorf("nnir: BatchNormalization missing parameter %d", i)
				}
				params = append(params, p)
			}
			out = f.Emit(OpBatchNorm, x.Type, append([]*ir.Value{x}, params...),
				map[string]any{"eps": n.AttrFloat("epsilon", 1e-5)})
		case "AveragePool":
			ks := n.AttrInts("kernel_shape", nil)
			st := n.AttrInts("strides", []int64{1, 1})
			if len(ks) != 2 || ks[0] != ks[1] {
				return nil, fmt.Errorf("nnir: AveragePool needs square kernel")
			}
			k, s := int(ks[0]), int(st[0])
			sh := x.Type.Shape
			out = f.Emit(OpAvgPool, ir.TensorType(sh[0], sh[1], (sh[2]-k)/s+1, (sh[3]-k)/s+1),
				[]*ir.Value{x}, map[string]any{"kernel": k, "stride": s})
		case "GlobalAveragePool":
			sh := x.Type.Shape
			out = f.Emit(OpGlobalPool, ir.TensorType(sh[0], sh[1], 1, 1), []*ir.Value{x}, nil)
		case "Flatten":
			n0 := x.Type.Shape[0]
			rest := x.Type.Len() / n0
			out = f.Emit(OpFlatten, ir.TensorType(n0, rest), []*ir.Value{x}, nil)
		case "Reshape":
			shapeT, ok := consts[n.Inputs[1]]
			if !ok {
				return nil, fmt.Errorf("nnir: Reshape with non-constant shape")
			}
			shape := make([]int, len(shapeT.Data))
			for i, v := range shapeT.Data {
				shape[i] = int(v)
			}
			probe := tensor.New(x.Type.Shape...)
			reshaped, err := probe.Reshape(shape...)
			if err != nil {
				return nil, err
			}
			out = f.Emit(OpReshape, ir.TensorType(reshaped.Shape...), []*ir.Value{x},
				map[string]any{"shape": append([]int(nil), reshaped.Shape...)})
		default:
			return nil, fmt.Errorf("nnir: unsupported ONNX operator %q", n.OpType)
		}
		values[n.Outputs[0]] = out
	}

	outName := g.Outputs[0].Name
	ret, ok := values[outName]
	if !ok {
		return nil, fmt.Errorf("nnir: output %q not produced", outName)
	}
	f.Ret = ret
	if err := ir.VerifyFunc(f); err != nil {
		return nil, err
	}
	return mod, nil
}

func convShape(x, w []int, stride, pad int) ([]int, error) {
	if len(x) != 4 || len(w) != 4 {
		return nil, fmt.Errorf("nnir: conv needs NCHW/OIHW, got %v / %v", x, w)
	}
	if x[1] != w[1] {
		return nil, fmt.Errorf("nnir: conv channel mismatch %d vs %d", x[1], w[1])
	}
	oh := (x[2]+2*pad-w[2])/stride + 1
	ow := (x[3]+2*pad-w[3])/stride + 1
	if oh <= 0 || ow <= 0 {
		return nil, fmt.Errorf("nnir: conv output collapses to %dx%d", oh, ow)
	}
	return []int{x[0], w[0], oh, ow}, nil
}
