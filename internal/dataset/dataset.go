// Package dataset generates the synthetic CIFAR-shaped classification
// data used by the accuracy experiments (the substitution for the
// proprietary CIFAR-10/100 pipeline, per DESIGN.md): each class is a
// smooth random prototype image; samples are noisy, randomly shifted
// copies. The task is learnable but not trivial, which is what Table 11
// needs — a model whose accuracy is meaningfully below 100% so that the
// encrypted-vs-unencrypted loss is measurable.
package dataset

import (
	"fmt"
	"math"
	"math/rand/v2"

	"antace/internal/tensor"
)

// Config describes a synthetic dataset.
type Config struct {
	Classes  int
	Channels int
	Size     int // spatial size
	// NoiseSigma is the additive Gaussian noise level (default 0.45).
	NoiseSigma float64
	// MaxShift is the maximum random cyclic shift in pixels (default 1).
	MaxShift int
	Seed     uint64
}

// Dataset holds the class prototypes and sampling configuration.
type Dataset struct {
	cfg        Config
	prototypes []*tensor.Tensor
}

// Sample is one labelled example.
type Sample struct {
	Image *tensor.Tensor // (1, C, H, W)
	Label int
}

// New builds a dataset. Prototypes are smoothed random fields, giving
// classes overlapping but distinguishable structure.
func New(cfg Config) (*Dataset, error) {
	if cfg.Classes < 2 {
		return nil, fmt.Errorf("dataset: need at least 2 classes")
	}
	if cfg.Channels == 0 {
		cfg.Channels = 1
	}
	if cfg.Size == 0 {
		cfg.Size = 8
	}
	if cfg.NoiseSigma == 0 {
		cfg.NoiseSigma = 0.45
	}
	if cfg.MaxShift == 0 {
		cfg.MaxShift = 1
	}
	if cfg.Seed == 0 {
		cfg.Seed = 1
	}
	rng := rand.New(rand.NewPCG(cfg.Seed, 0xDA7A))
	d := &Dataset{cfg: cfg}
	for k := 0; k < cfg.Classes; k++ {
		raw := tensor.New(cfg.Channels, cfg.Size, cfg.Size)
		for i := range raw.Data {
			raw.Data[i] = rng.NormFloat64()
		}
		d.prototypes = append(d.prototypes, smooth(raw, cfg.Size, cfg.Channels))
	}
	return d, nil
}

// smooth applies a 3x3 box blur per channel (cyclic), normalising to
// unit max magnitude.
func smooth(t *tensor.Tensor, size, channels int) *tensor.Tensor {
	out := tensor.New(channels, size, size)
	for c := 0; c < channels; c++ {
		for y := 0; y < size; y++ {
			for x := 0; x < size; x++ {
				acc := 0.0
				for dy := -1; dy <= 1; dy++ {
					for dx := -1; dx <= 1; dx++ {
						yy := ((y+dy)%size + size) % size
						xx := ((x+dx)%size + size) % size
						acc += t.At(c, yy, xx)
					}
				}
				out.Set(acc/9, c, y, x)
			}
		}
	}
	maxAbs := 0.0
	for _, v := range out.Data {
		if a := math.Abs(v); a > maxAbs {
			maxAbs = a
		}
	}
	if maxAbs > 0 {
		for i := range out.Data {
			out.Data[i] /= maxAbs
		}
	}
	return out
}

// Batch draws n labelled samples using the provided stream seed
// (deterministic, disjoint from the prototype seed).
func (d *Dataset) Batch(n int, streamSeed uint64) []Sample {
	rng := rand.New(rand.NewPCG(d.cfg.Seed^0xBEEF, streamSeed))
	out := make([]Sample, n)
	size := d.cfg.Size
	channels := d.cfg.Channels
	for i := range out {
		label := rng.IntN(d.cfg.Classes)
		proto := d.prototypes[label]
		img := tensor.New(1, channels, size, size)
		sy := rng.IntN(2*d.cfg.MaxShift+1) - d.cfg.MaxShift
		sx := rng.IntN(2*d.cfg.MaxShift+1) - d.cfg.MaxShift
		for c := 0; c < channels; c++ {
			for y := 0; y < size; y++ {
				for x := 0; x < size; x++ {
					yy := ((y+sy)%size + size) % size
					xx := ((x+sx)%size + size) % size
					v := proto.At(c, yy, xx) + rng.NormFloat64()*d.cfg.NoiseSigma
					img.Set(v, 0, c, y, x)
				}
			}
		}
		out[i] = Sample{Image: img, Label: label}
	}
	return out
}

// Classes returns the class count.
func (d *Dataset) Classes() int { return d.cfg.Classes }
