package fault

import (
	"strings"
	"testing"
)

// FuzzParseSpec hardens the ACE_FAULTS parser: arbitrary input must
// either parse into well-formed entries or fail cleanly — never panic,
// and never produce an entry the spec grammar forbids.
func FuzzParseSpec(f *testing.F) {
	f.Add("serve.worker.panic:1:0")
	f.Add("a:1,b:2:3")
	f.Add("p:18446744073709551615:18446744073709551615")
	f.Add(" , ")
	f.Add("::::")
	f.Add("a:1,a:1")
	f.Add(strings.Repeat("x", 1024))
	f.Fuzz(func(t *testing.T, spec string) {
		entries, err := ParseSpec(spec)
		if err != nil {
			if entries != nil {
				t.Fatalf("error %v alongside entries %+v", err, entries)
			}
			return
		}
		seen := map[string]bool{}
		for _, e := range entries {
			if e.Point == "" || strings.ContainsAny(e.Point, " \t,:") {
				t.Fatalf("accepted malformed point name %q from %q", e.Point, spec)
			}
			if e.Count == 0 {
				t.Fatalf("accepted zero count from %q", spec)
			}
			if seen[e.Point] {
				t.Fatalf("accepted duplicate point %q from %q", e.Point, spec)
			}
			seen[e.Point] = true
		}
		// A parsed spec must arm without error (Arm = ParseSpec + install).
		if err := Arm(spec); err != nil {
			t.Fatalf("ParseSpec accepted %q but Arm rejected it: %v", spec, err)
		}
		Disarm()
	})
}
