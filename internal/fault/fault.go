// Package fault is the runtime's failure-engineering layer: a typed
// error taxonomy for faults that cross the serving boundary, and a
// registry of named injection points that let tests and chaos runs
// trigger those faults deterministically.
//
// Injection points are free when disarmed: Inject performs a single
// atomic load and returns nil, so the hooks threaded through the serve
// queue, the vm instruction dispatch and the fheclient transport cost
// nothing in production. Arming happens either programmatically (tests
// call Arm) or from the ACE_FAULTS environment variable, whose spec is
//
//	point[:count[:seed]][,point[:count[:seed]]...]
//
// where count is how many consecutive invocations fire (default 1) and
// seed is how many invocations to skip first (default 0). Firing is a
// pure function of the invocation number, so a chaos scenario replays
// identically run after run: "serve.worker.panic:1:2" always kills
// exactly the third evaluation and nothing else.
package fault

import (
	"errors"
	"fmt"
	"os"
	"runtime/debug"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Registered injection-point names. The registry is open — tests may arm
// ad-hoc names — but these are the points compiled into the runtime.
const (
	// ServeWorkerPanic panics inside a serve worker ahead of evaluation,
	// exercising the pool's panic isolation.
	ServeWorkerPanic = "serve.worker.panic"
	// VMInstrPanic panics inside vm.Machine.RunCtx instruction dispatch,
	// exercising the machine-level recover.
	VMInstrPanic = "vm.instr.panic"
	// VMInstrErr makes an instruction fail with a returned error.
	VMInstrErr = "vm.instr.err"
	// CKKSRescaleErr makes ckks.Evaluator.Rescale fail with a returned
	// error, standing in for a level-exhaustion bug in compiled code.
	CKKSRescaleErr = "ckks.rescale.err"
	// ClientConnReset drops a completed HTTP exchange on the fheclient
	// side, simulating a connection reset after the server already did
	// the work — the case idempotency keys exist for.
	ClientConnReset = "client.conn.reset"
	// StoreWriteTorn makes a store.Log append write only a prefix of
	// its frame and fail — the on-disk state a crash mid-append leaves
	// behind — exercising torn-write truncation and replay healing.
	StoreWriteTorn = "store.write.torn"
	// ServeRecoverErr fails one journaled job's recovery during daemon
	// startup, exercising the forget-and-re-execute fallback path.
	ServeRecoverErr = "serve.recover.err"
	// BatchFlushPanic panics inside the batched evaluation path after a
	// coalesced group has been handed to a worker, exercising the
	// batch-wide failure boundary: every job in that group must fail,
	// and no other group may be affected.
	BatchFlushPanic = "batch.flush.panic"
	// RouterForwardErr fails one acerouter forward before the request
	// leaves the router — indistinguishable from a backend that died
	// between health probes — exercising the failover path onto the
	// session's replica shard.
	RouterForwardErr = "router.forward.err"
	// ReplicaShipTorn truncates one replication shipment mid-frame, the
	// on-the-wire shape of a shard that died while streaming its journal
	// to a successor: the apply side must keep the intact prefix and the
	// shipper must re-ship the cut records.
	ReplicaShipTorn = "replica.ship.torn"
	// RouterHedgeFire forces the router's hedging timer for one infer to
	// fire immediately, issuing the duplicate request to the replica
	// regardless of the primary's observed latency — the deterministic
	// way to exercise the hedge race and its exactly-once guarantee.
	RouterHedgeFire = "router.hedge.fire"
)

// Points lists the injection points compiled into the runtime, for the
// registry section of /v1/statz-style introspection and docs.
func Points() []string {
	return []string{ServeWorkerPanic, VMInstrPanic, VMInstrErr, CKKSRescaleErr, ClientConnReset, StoreWriteTorn, ServeRecoverErr, BatchFlushPanic, RouterForwardErr, ReplicaShipTorn, RouterHedgeFire}
}

// InjectedError is the error produced by a firing injection point.
type InjectedError struct {
	Point string // which point fired
	Hit   uint64 // 1-based count of fires at this point
}

func (e *InjectedError) Error() string {
	return fmt.Sprintf("fault: injected at %s (hit %d)", e.Point, e.Hit)
}

// pointState is one armed injection point. calls counts invocations;
// the point fires on invocation numbers skip+1 .. skip+count.
type pointState struct {
	skip  uint64
	count uint64
	calls atomic.Uint64
	fired atomic.Uint64
}

var (
	enabled atomic.Bool
	mu      sync.RWMutex
	points  map[string]*pointState
)

// Inject is the hook call sites thread through their failure paths. It
// returns nil unless the named point is armed and this invocation falls
// in its firing window, in which case it returns an *InjectedError for
// the caller to propagate.
func Inject(name string) error {
	if !enabled.Load() {
		return nil
	}
	mu.RLock()
	st := points[name]
	mu.RUnlock()
	if st == nil {
		return nil
	}
	n := st.calls.Add(1)
	if n <= st.skip || n > st.skip+st.count {
		return nil
	}
	return &InjectedError{Point: name, Hit: st.fired.Add(1)}
}

// InjectPanic is Inject for call sites that simulate crashes rather than
// returned errors: when the point fires it panics with the
// *InjectedError, which the recover layers convert to a RuntimeError.
func InjectPanic(name string) {
	if err := Inject(name); err != nil {
		panic(err)
	}
}

// Arm parses a spec and replaces the armed set. An empty spec disarms
// everything (same as Disarm).
func Arm(spec string) error {
	parsed, err := ParseSpec(spec)
	if err != nil {
		return err
	}
	mu.Lock()
	points = make(map[string]*pointState, len(parsed))
	for _, e := range parsed {
		st := &pointState{skip: e.Seed, count: e.Count}
		points[e.Point] = st
	}
	mu.Unlock()
	enabled.Store(len(parsed) > 0)
	return nil
}

// ArmFromEnv arms from the ACE_FAULTS environment variable; a missing or
// empty variable leaves everything disarmed. It reports whether anything
// was armed.
func ArmFromEnv() (bool, error) {
	spec := os.Getenv("ACE_FAULTS")
	if spec == "" {
		return false, nil
	}
	if err := Arm(spec); err != nil {
		return false, fmt.Errorf("fault: ACE_FAULTS: %w", err)
	}
	return true, nil
}

// Disarm clears every armed point; subsequent Inject calls are no-ops.
func Disarm() {
	enabled.Store(false)
	mu.Lock()
	points = nil
	mu.Unlock()
}

// SpecEntry is one parsed ACE_FAULTS element.
type SpecEntry struct {
	Point string
	Count uint64 // consecutive invocations that fire
	Seed  uint64 // invocations skipped before the first fire
}

// ParseSpec parses an ACE_FAULTS spec without arming anything. Entries
// are comma-separated point[:count[:seed]]; whitespace around entries is
// ignored; duplicate points are rejected so a spec has one unambiguous
// meaning.
func ParseSpec(spec string) ([]SpecEntry, error) {
	spec = strings.TrimSpace(spec)
	if spec == "" {
		return nil, nil
	}
	var out []SpecEntry
	seen := map[string]bool{}
	for _, raw := range strings.Split(spec, ",") {
		entry := strings.TrimSpace(raw)
		if entry == "" {
			return nil, fmt.Errorf("fault: empty entry in spec %q", spec)
		}
		parts := strings.Split(entry, ":")
		if len(parts) > 3 {
			return nil, fmt.Errorf("fault: entry %q has more than point:count:seed", entry)
		}
		name := parts[0]
		if name == "" || strings.ContainsAny(name, " \t") {
			return nil, fmt.Errorf("fault: bad point name %q", name)
		}
		if seen[name] {
			return nil, fmt.Errorf("fault: point %q armed twice", name)
		}
		seen[name] = true
		e := SpecEntry{Point: name, Count: 1}
		if len(parts) > 1 {
			n, err := strconv.ParseUint(parts[1], 10, 64)
			if err != nil || n == 0 {
				return nil, fmt.Errorf("fault: bad count %q in entry %q", parts[1], entry)
			}
			e.Count = n
		}
		if len(parts) > 2 {
			n, err := strconv.ParseUint(parts[2], 10, 64)
			if err != nil {
				return nil, fmt.Errorf("fault: bad seed %q in entry %q", parts[2], entry)
			}
			e.Seed = n
		}
		out = append(out, e)
	}
	return out, nil
}

// PointStatus is one armed point's live counters.
type PointStatus struct {
	Point string `json:"point"`
	Seed  uint64 `json:"seed"`
	Count uint64 `json:"count"`
	Calls uint64 `json:"calls"`
	Fired uint64 `json:"fired"`
}

// Snapshot returns the armed points and their counters, sorted by name;
// nil when nothing is armed. Shutdown paths log this so post-mortem
// state survives the process.
func Snapshot() []PointStatus {
	mu.RLock()
	defer mu.RUnlock()
	if len(points) == 0 {
		return nil
	}
	out := make([]PointStatus, 0, len(points))
	for name, st := range points {
		out = append(out, PointStatus{
			Point: name,
			Seed:  st.skip,
			Count: st.count,
			Calls: st.calls.Load(),
			Fired: st.fired.Load(),
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Point < out[j].Point })
	return out
}

// TotalFired sums fires across all armed points (a /v1/statz gauge).
func TotalFired() uint64 {
	var total uint64
	for _, st := range Snapshot() {
		total += st.Fired
	}
	return total
}

// Error codes carried by RuntimeError. They are part of the wire
// contract (api.ErrorReply.Code) and must stay stable.
const (
	// CodeEvalPanic: a panic escaped the crypto core or a serve worker
	// and was converted at a recovery boundary. The worker survives; the
	// request fails with 500.
	CodeEvalPanic = "EVAL_PANIC"
	// CodeEvalError: evaluation failed with an ordinary returned error.
	CodeEvalError = "EVAL_ERROR"
	// CodeInjected: an armed injection point fired on the error path.
	CodeInjected = "FAULT_INJECTED"
)

// RuntimeError is the typed form of a fault that crossed an isolation
// boundary: a stable machine-readable Code, the operation that failed,
// the underlying cause, and (for panics) the stack captured at the
// recovery point.
type RuntimeError struct {
	Code  string
	Op    string
	Err   error
	Stack []byte
}

func (e *RuntimeError) Error() string {
	return fmt.Sprintf("%s at %s: %v", e.Code, e.Op, e.Err)
}

func (e *RuntimeError) Unwrap() error { return e.Err }

// FromPanic converts a recovered panic value into a RuntimeError,
// capturing the stack of the recovery point. Injected panics are
// deliberately NOT distinguished here: a panic is a panic whatever armed
// it, so chaos runs exercise exactly the production recovery path.
func FromPanic(op string, rec any) *RuntimeError {
	err, ok := rec.(error)
	if !ok {
		err = fmt.Errorf("%v", rec)
	}
	return &RuntimeError{Code: CodeEvalPanic, Op: op, Err: err, Stack: debug.Stack()}
}

// AsRuntime unwraps err to a *RuntimeError, or wraps it as one with the
// given code when it is not already typed. Errors originating at an
// injection point are coded CodeInjected regardless of the suggested
// code, so chaos-run failures are distinguishable from organic ones.
// A nil err returns nil.
func AsRuntime(code, op string, err error) *RuntimeError {
	if err == nil {
		return nil
	}
	var re *RuntimeError
	if errors.As(err, &re) {
		return re
	}
	var inj *InjectedError
	if errors.As(err, &inj) {
		return &RuntimeError{Code: CodeInjected, Op: op, Err: err}
	}
	return &RuntimeError{Code: code, Op: op, Err: err}
}
