package fault

import (
	"errors"
	"fmt"
	"testing"
)

func TestParseSpec(t *testing.T) {
	cases := []struct {
		spec string
		want []SpecEntry
		ok   bool
	}{
		{"", nil, true},
		{"  ", nil, true},
		{"serve.worker.panic", []SpecEntry{{Point: "serve.worker.panic", Count: 1}}, true},
		{"p:3", []SpecEntry{{Point: "p", Count: 3}}, true},
		{"p:3:7", []SpecEntry{{Point: "p", Count: 3, Seed: 7}}, true},
		{"a:1:0, b:2:5", []SpecEntry{{Point: "a", Count: 1}, {Point: "b", Count: 2, Seed: 5}}, true},
		{"p:0", nil, false},      // zero count
		{"p:x", nil, false},      // non-numeric count
		{"p:1:y", nil, false},    // non-numeric seed
		{"p:1:2:3", nil, false},  // too many fields
		{":1", nil, false},       // empty name
		{"a,,b", nil, false},     // empty entry
		{"a:1,a:2", nil, false},  // duplicate point
		{"a b:1", nil, false},    // whitespace in name
		{"p:18446744073709551615", []SpecEntry{{Point: "p", Count: ^uint64(0)}}, true},
	}
	for _, c := range cases {
		got, err := ParseSpec(c.spec)
		if c.ok != (err == nil) {
			t.Fatalf("ParseSpec(%q): err=%v, want ok=%v", c.spec, err, c.ok)
		}
		if !c.ok {
			continue
		}
		if len(got) != len(c.want) {
			t.Fatalf("ParseSpec(%q) = %+v, want %+v", c.spec, got, c.want)
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Fatalf("ParseSpec(%q)[%d] = %+v, want %+v", c.spec, i, got[i], c.want[i])
			}
		}
	}
}

// TestInjectWindow pins the deterministic firing semantics: with
// count=2, seed=1 the point fires on exactly invocations 2 and 3.
func TestInjectWindow(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("p:2:1"); err != nil {
		t.Fatal(err)
	}
	var fires []int
	for i := 1; i <= 6; i++ {
		if err := Inject("p"); err != nil {
			fires = append(fires, i)
			var inj *InjectedError
			if !errors.As(err, &inj) || inj.Point != "p" {
				t.Fatalf("invocation %d returned %v, want *InjectedError for p", i, err)
			}
		}
	}
	if len(fires) != 2 || fires[0] != 2 || fires[1] != 3 {
		t.Fatalf("fired on invocations %v, want [2 3]", fires)
	}
	snap := Snapshot()
	if len(snap) != 1 || snap[0].Calls != 6 || snap[0].Fired != 2 {
		t.Fatalf("snapshot %+v, want 6 calls / 2 fired", snap)
	}
	if TotalFired() != 2 {
		t.Fatalf("TotalFired = %d, want 2", TotalFired())
	}
}

func TestInjectDisarmedIsNil(t *testing.T) {
	Disarm()
	for i := 0; i < 3; i++ {
		if err := Inject("anything"); err != nil {
			t.Fatalf("disarmed Inject returned %v", err)
		}
	}
	if Snapshot() != nil {
		t.Fatalf("disarmed snapshot should be nil")
	}
}

func TestInjectUnarmedPointIsNil(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("other:1"); err != nil {
		t.Fatal(err)
	}
	if err := Inject("p"); err != nil {
		t.Fatalf("unarmed point fired: %v", err)
	}
}

func TestInjectPanicConvertsThroughFromPanic(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("boom:1"); err != nil {
		t.Fatal(err)
	}
	var re *RuntimeError
	func() {
		defer func() {
			if rec := recover(); rec != nil {
				re = FromPanic("test.op", rec)
			}
		}()
		InjectPanic("boom")
	}()
	if re == nil {
		t.Fatal("InjectPanic did not panic")
	}
	if re.Code != CodeEvalPanic || re.Op != "test.op" || len(re.Stack) == 0 {
		t.Fatalf("FromPanic produced %+v", re)
	}
	var inj *InjectedError
	if !errors.As(re, &inj) {
		t.Fatalf("RuntimeError does not unwrap to the injected cause: %v", re)
	}
}

func TestArmFromEnv(t *testing.T) {
	t.Cleanup(Disarm)
	t.Setenv("ACE_FAULTS", "p:1:0")
	armed, err := ArmFromEnv()
	if err != nil || !armed {
		t.Fatalf("ArmFromEnv = %v, %v", armed, err)
	}
	if err := Inject("p"); err == nil {
		t.Fatal("armed point did not fire")
	}

	t.Setenv("ACE_FAULTS", "")
	armed, err = ArmFromEnv()
	if err != nil || armed {
		t.Fatalf("empty ACE_FAULTS: armed=%v err=%v", armed, err)
	}

	t.Setenv("ACE_FAULTS", "p:bad")
	if _, err := ArmFromEnv(); err == nil {
		t.Fatal("bad ACE_FAULTS accepted")
	}
}

func TestAsRuntime(t *testing.T) {
	if AsRuntime(CodeEvalError, "op", nil) != nil {
		t.Fatal("nil error should map to nil")
	}
	plain := fmt.Errorf("plain failure")
	re := AsRuntime(CodeEvalError, "op", plain)
	if re.Code != CodeEvalError || !errors.Is(re, plain) {
		t.Fatalf("plain error wrapped as %+v", re)
	}
	// Already-typed errors pass through unchanged, even wrapped.
	wrapped := fmt.Errorf("ctx: %w", re)
	if got := AsRuntime(CodeEvalPanic, "other", wrapped); got != re {
		t.Fatalf("typed error rewrapped: %+v", got)
	}
	// Injection errors are coded CodeInjected.
	inj := &InjectedError{Point: "p", Hit: 1}
	if got := AsRuntime(CodeEvalError, "op", fmt.Errorf("x: %w", inj)); got.Code != CodeInjected {
		t.Fatalf("injected error coded %q, want %q", got.Code, CodeInjected)
	}
}

// TestInjectConcurrent drives an armed point from many goroutines under
// -race: exactly count fires happen, whatever the interleaving.
func TestInjectConcurrent(t *testing.T) {
	t.Cleanup(Disarm)
	if err := Arm("c:5:10"); err != nil {
		t.Fatal(err)
	}
	const goroutines, per = 8, 25
	fires := make(chan struct{}, goroutines*per)
	done := make(chan struct{})
	for g := 0; g < goroutines; g++ {
		go func() {
			for i := 0; i < per; i++ {
				if Inject("c") != nil {
					fires <- struct{}{}
				}
			}
			done <- struct{}{}
		}()
	}
	for g := 0; g < goroutines; g++ {
		<-done
	}
	close(fires)
	n := 0
	for range fires {
		n++
	}
	if n != 5 {
		t.Fatalf("%d fires, want exactly 5", n)
	}
}
