// Package polyir implements the POLY IR: every CKKS operation is
// decomposed into the RNS-polynomial primitives the runtime library (or
// a future hardware accelerator) executes — NTTs, per-modulus
// element-wise loops, digit decomposition/base extension, and modulus
// reduction — annotated with their residue counts. Two optimisation
// passes mirror the paper's POLY-level techniques: operator fusion
// (decomp+mod_up, modmul+modadd) and RNS loop fusion, which merges
// adjacent element-wise loops with identical trip counts to cut memory
// traffic. The POLY module drives code generation and the analytic cost
// model; it is not executed directly.
package polyir

import (
	"fmt"

	"antace/internal/ckksir"
	"antace/internal/ir"
	"antace/internal/sihe"
)

// Op names ("hw_" marks primitives that map to accelerator
// instructions, as in the paper's Table 7).
const (
	OpNTT         = "poly.hw_ntt"
	OpINTT        = "poly.hw_intt"
	OpModAdd      = "poly.hw_modadd"
	OpModMul      = "poly.hw_modmul"
	OpModMulAdd   = "poly.hw_modmuladd" // fused multiply-accumulate
	OpRotate      = "poly.hw_rotate"    // NTT-domain automorphism permutation
	OpDecomp      = "poly.decomp"
	OpModUp       = "poly.mod_up"
	OpDecompModUp = "poly.decomp_modup" // fused
	OpModDown     = "poly.mod_down"
	OpRescale     = "poly.rescale"
	OpFusedLoop   = "poly.fused_eltwise" // loop-fused element-wise block
)

func init() {
	P := []ir.Kind{ir.KindPoly}
	for _, name := range []string{OpNTT, OpINTT, OpModAdd, OpModMul, OpModMulAdd, OpRotate, OpDecomp, OpModUp, OpDecompModUp, OpModDown, OpRescale, OpFusedLoop} {
		ir.RegisterOp(ir.OpSpec{Name: name, Args: [][]ir.Kind{P}, MinArgs: 0, Result: ir.KindPoly, RequiredAttrs: []string{"rns", "count"}})
	}
}

// Lower expands a CKKS module into POLY IR counts. alpha is the number
// of special primes (key-switch digit width); k their count.
func Lower(cm *ir.Module, alpha, k int) (*ir.Module, error) {
	src := cm.Main()
	if src == nil {
		return nil, fmt.Errorf("polyir: empty module")
	}
	mod := ir.NewModule(cm.Name)
	for key, v := range cm.Attrs {
		mod.Attrs[key] = v
	}
	f := mod.NewFunc(src.Name)
	pt := ir.Type{Kind: ir.KindPoly, Shape: []int{1}}
	seed := f.NewParam("ct", pt)
	cur := seed

	emit := func(op string, rns, count int) {
		if count <= 0 {
			return
		}
		cur = f.Emit(op, pt, []*ir.Value{cur}, map[string]any{"rns": rns, "count": count})
	}
	keySwitch := func(level int) {
		r := level + 1
		digits := (r + alpha - 1) / alpha
		emit(OpINTT, r, 1)
		// Per digit: decompose, extend to Q∪P, forward NTT, and
		// multiply-accumulate against both key components.
		emit(OpDecomp, r, digits)
		emit(OpModUp, r+k, digits)
		emit(OpNTT, r+k, digits)
		emit(OpModMul, r+k, 4*digits)
		emit(OpModAdd, r+k, 4*digits)
		// Two output polynomials: back to coefficients, divide by P,
		// forward again.
		emit(OpINTT, r+k, 2)
		emit(OpModDown, r, 2)
		emit(OpNTT, r, 2)
	}

	for _, in := range src.Body {
		l := in.Result.Level
		r := l + 1
		switch in.Op {
		case ckksir.OpEncode:
			emit(OpNTT, r, 1)
		case ckksir.OpAdd:
			emit(OpModAdd, r, 2)
		case ckksir.OpAddPlain:
			emit(OpModAdd, r, 1)
		case ckksir.OpMulPlain, ckksir.OpMulConst:
			emit(OpModMul, r, 2)
		case ckksir.OpMul:
			emit(OpModMul, r, 4)
			emit(OpModAdd, r, 1)
		case ckksir.OpRelin:
			keySwitch(l)
			emit(OpModAdd, r, 2)
		case ckksir.OpRotate:
			emit(OpRotate, r, 2)
			keySwitch(l)
			emit(OpModAdd, r, 1)
		case ckksir.OpRescale:
			emit(OpRescale, r, 2)
		case ckksir.OpModSwitch, ckksir.OpReinterpret:
			// Dropping RNS rows / re-declaring scale is free.
		case ckksir.OpPoly:
			coeffs := in.Attrs["coeffs"].([]float64)
			expandPolyEval(emit, keySwitch, coeffs, in.Args[0].Level)
		case ckksir.OpBootstrap:
			expandBootstrap(emit, keySwitch, in, src.Params[0].Type.Len())
		default:
			return nil, fmt.Errorf("polyir: cannot lower %q", in.Op)
		}
	}
	f.Ret = cur
	if err := ir.VerifyFunc(f); err != nil {
		return nil, err
	}
	return mod, nil
}

// expandPolyEval models the runtime's BSGS evaluation: power-basis
// generation (ciphertext products with relinearisation and rescale) plus
// per-coefficient constant multiplications.
func expandPolyEval(emit func(string, int, int), keySwitch func(int), coeffs []float64, level int) {
	deg := 0
	nonzero := 0
	for i, c := range coeffs {
		if c != 0 {
			deg = i
			nonzero++
		}
	}
	if deg < 1 {
		return
	}
	logD := 0
	for (1 << logD) < deg+1 {
		logD++
	}
	m := 1 << ((logD + 1) / 2)
	giants := 0
	for g := m; 2*g <= deg; g *= 2 {
		giants++
	}
	ctMuls := (m - 1) + giants // power basis products
	spine := giants + 1        // quotient-spine products
	l := level
	for i := 0; i < ctMuls+spine; i++ {
		r := l + 1
		emit(OpModMul, r, 4)
		emit(OpModAdd, r, 1)
		keySwitch(l)
		emit(OpRescale, r, 2)
		if i%2 == 1 && l > 1 {
			l--
		}
	}
	emit(OpModMul, level+1, 2*nonzero) // baby-step constant multiplies
	emit(OpModAdd, level+1, nonzero)
}

// expandBootstrap models the circuit: two dense linear transforms over
// the slot space (BSGS rotations plus diagonal multiplications), the
// EvalMod polynomial and the double-angle squarings.
func expandBootstrap(emit func(string, int, int), keySwitch func(int), in *ir.Instr, slots int) {
	target := in.AttrInt("target", 1)
	// Conservative model at the raised level.
	l := target + 10
	n1 := 1
	for n1*n1 < slots {
		n1 <<= 1
	}
	rotations := n1 + slots/n1
	for _, phase := range []int{l, target + 2} { // C2S then S2C
		for i := 0; i < rotations; i++ {
			emit(OpRotate, phase+1, 2)
			keySwitch(phase)
		}
		emit(OpModMul, phase+1, 2*slots/8) // sparse-diagonal estimate
		emit(OpRescale, phase+1, 2)
	}
	// EvalMod: degree-30 Chebyshev + 3 double angles on two halves.
	evalCoeffs := make([]float64, 31)
	for i := range evalCoeffs {
		evalCoeffs[i] = 1
	}
	for half := 0; half < 2; half++ {
		expandPolyEval(emit, keySwitch, evalCoeffs, l-2)
		for i := 0; i < 3; i++ {
			emit(OpModMul, target+6, 4)
			keySwitch(target + 5)
			emit(OpRescale, target+6, 2)
		}
	}
}

// Stats summarises a POLY module.
type Stats struct {
	Loops       int // element-wise loop launches
	FusedLoops  int
	NTTs        int // weighted by residue count
	ModMuls     int // weighted by residue count
	KeySwitches int
}

// Analyze computes stats (NTT/ModMul totals weighted by rns count).
func Analyze(f *ir.Func) Stats {
	s := Stats{}
	for _, in := range f.Body {
		rns := in.AttrInt("rns", 1)
		count := in.AttrInt("count", 1)
		switch in.Op {
		case OpNTT, OpINTT:
			s.NTTs += rns * count
			s.Loops += count
		case OpModMul, OpModMulAdd:
			s.ModMuls += rns * count
			s.Loops += count
		case OpModAdd, OpRescale, OpRotate, OpDecomp, OpModUp, OpDecompModUp, OpModDown:
			s.Loops += count
		case OpFusedLoop:
			s.FusedLoops += count
			s.Loops += count
			s.ModMuls += rns * in.AttrInt("ops", count)
		}
		if in.Op == OpModDown {
			s.KeySwitches++ // two ModDowns per switch; adjusted below
		}
	}
	s.KeySwitches /= 2
	return s
}

// FuseOperators merges decomp+mod_up pairs into decomp_modup and
// modmul+modadd pairs (same rns and count) into hw_modmuladd — the
// paper's POLY operator fusion, which the runtime exposes as fused
// library kernels.
func FuseOperators() ir.Pass {
	return ir.FuncPass{PassName: "poly-operator-fusion", PassLevel: "POLY", Fn: func(f *ir.Func) error {
		var body []*ir.Instr
		for i := 0; i < len(f.Body); i++ {
			in := f.Body[i]
			if i+1 < len(f.Body) {
				next := f.Body[i+1]
				if in.Op == OpDecomp && next.Op == OpModUp {
					fused := &ir.Instr{Op: OpDecompModUp, Args: in.Args,
						Attrs:  map[string]any{"rns": next.AttrInt("rns", 1), "count": in.AttrInt("count", 1)},
						Result: next.Result}
					next.Result.Def = fused
					body = append(body, fused)
					i++
					continue
				}
				if in.Op == OpModMul && next.Op == OpModAdd &&
					in.AttrInt("rns", 0) == next.AttrInt("rns", 0) &&
					in.AttrInt("count", 0) == next.AttrInt("count", 0) {
					fused := &ir.Instr{Op: OpModMulAdd, Args: in.Args,
						Attrs:  map[string]any{"rns": in.AttrInt("rns", 1), "count": in.AttrInt("count", 1)},
						Result: next.Result}
					next.Result.Def = fused
					body = append(body, fused)
					i++
					continue
				}
			}
			body = append(body, in)
		}
		f.Body = body
		return nil
	}}
}

// FuseRNSLoops merges runs of adjacent element-wise ops with identical
// residue counts into single fused loops (trip counts are compile-time
// constants in RNS-CKKS, making this always legal for element-wise ops).
func FuseRNSLoops() ir.Pass {
	eltwise := map[string]bool{OpModAdd: true, OpModMul: true, OpModMulAdd: true}
	return ir.FuncPass{PassName: "poly-rns-loop-fusion", PassLevel: "POLY", Fn: func(f *ir.Func) error {
		var body []*ir.Instr
		for i := 0; i < len(f.Body); i++ {
			in := f.Body[i]
			if !eltwise[in.Op] {
				body = append(body, in)
				continue
			}
			rns := in.AttrInt("rns", 1)
			total := in.AttrInt("count", 1)
			j := i + 1
			for j < len(f.Body) && eltwise[f.Body[j].Op] && f.Body[j].AttrInt("rns", 1) == rns {
				total += f.Body[j].AttrInt("count", 1)
				j++
			}
			if j == i+1 {
				body = append(body, in)
				continue
			}
			last := f.Body[j-1]
			// One fused launch covering `total` element-wise operations.
			fused := &ir.Instr{Op: OpFusedLoop, Args: in.Args,
				Attrs:  map[string]any{"rns": rns, "count": 1, "ops": total},
				Result: last.Result}
			last.Result.Def = fused
			body = append(body, fused)
			i = j - 1
		}
		f.Body = body
		return nil
	}}
}

// LowerFromCKKS is a convenience wrapper deriving alpha/k from the
// compiled literal.
func LowerFromCKKS(res *ckksir.Result) (*ir.Module, error) {
	alpha := len(res.Literal.LogP)
	mod, err := Lower(res.Module, alpha, alpha)
	if err != nil {
		return nil, err
	}
	pm := &ir.PassManager{}
	pm.Add(FuseOperators(), FuseRNSLoops())
	if err := pm.Run(mod); err != nil {
		return nil, err
	}
	return mod, nil
}

// ReluCost is exported for the cost model: the level consumption of a
// stage list (re-exported from sihe to avoid an import cycle there).
func ReluCost(stages [][]float64) int { return sihe.ReLUDepth(stages) }
