package polyir

import (
	"reflect"
	"testing"

	"antace/internal/obs"
)

// TestObsFusedConstituentsMatchIR pins obs.FusedConstituents — which obs
// declares with string literals because it is a stdlib-only leaf — to
// the IR opcode constants. The runtime (internal/ckks) duplicates the
// same three kernel names; its copy is pinned by a sibling test in that
// package, so together the compiler, runtime, and observability views of
// the fused opcodes cannot drift apart.
func TestObsFusedConstituentsMatchIR(t *testing.T) {
	want := map[string][]string{
		OpDecompModUp: {OpDecomp, OpModUp, OpINTT, OpNTT},
		OpModMulAdd:   {OpModMul, OpModAdd},
		OpModDown:     {OpModDown, OpINTT, OpNTT},
	}
	if len(obs.FusedConstituents) != len(want) {
		t.Fatalf("obs.FusedConstituents has %d entries, IR defines %d fused ops", len(obs.FusedConstituents), len(want))
	}
	for op, constituents := range want {
		got, ok := obs.FusedConstituents[op]
		if !ok {
			t.Errorf("fused op %q missing from obs.FusedConstituents", op)
			continue
		}
		if !reflect.DeepEqual(got, constituents) {
			t.Errorf("fused op %q: obs constituents %v, IR says %v", op, got, constituents)
		}
	}
}
