package polyir

import (
	"testing"

	"antace/internal/ckksir"
	"antace/internal/ir"
	"antace/internal/nnir"
	"antace/internal/onnx"
	"antace/internal/sihe"
	"antace/internal/vecir"
)

func compiledCKKS(t *testing.T, boot bool) *ckksir.Result {
	t.Helper()
	m, err := onnx.BuildSmallCNN(onnx.SmallCNNConfig{InputSize: 8, Channels: 2, Classes: 3})
	if err != nil {
		t.Fatal(err)
	}
	nn, err := nnir.Import(m)
	if err != nil {
		t.Fatal(err)
	}
	pm := &ir.PassManager{}
	pm.Add(nnir.FuseConvBatchNorm(), ir.DCE())
	if err := pm.Run(nn); err != nil {
		t.Fatal(err)
	}
	if err := nnir.CalibrateReLUBounds(nn.Main(), 2, 1.5, 7); err != nil {
		t.Fatal(err)
	}
	vres, err := vecir.Lower(nn, vecir.Options{})
	if err != nil {
		t.Fatal(err)
	}
	sm, err := sihe.Lower(vres.Module, sihe.Options{ReLUAlpha: 5, ReLUEps: 0.125})
	if err != nil {
		t.Fatal(err)
	}
	mode := ckksir.BootstrapNever
	if boot {
		mode = ckksir.BootstrapAlways
	}
	res, err := ckksir.Lower(sm, ckksir.Options{Mode: mode, IgnoreSecurity: true})
	if err != nil {
		t.Fatal(err)
	}
	return res
}

func TestLowerProducesPolyOps(t *testing.T) {
	res := compiledCKKS(t, false)
	mod, err := Lower(res.Module, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	f := mod.Main()
	if len(f.Body) == 0 {
		t.Fatal("empty POLY module")
	}
	if err := ir.VerifyFunc(f); err != nil {
		t.Fatal(err)
	}
	s := Analyze(f)
	if s.NTTs == 0 || s.ModMuls == 0 {
		t.Fatalf("implausible stats %+v", s)
	}
	if s.KeySwitches == 0 {
		t.Fatal("no key switches counted")
	}
}

func TestOperatorFusion(t *testing.T) {
	res := compiledCKKS(t, false)
	mod, err := Lower(res.Module, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := mod.Main().OpHistogram()
	if before[OpDecomp] == 0 {
		t.Fatal("no decomp ops to fuse")
	}
	if err := FuseOperators().Run(mod); err != nil {
		t.Fatal(err)
	}
	after := mod.Main().OpHistogram()
	if after[OpDecompModUp] == 0 {
		t.Fatal("no fused decomp_modup produced")
	}
	if after[OpDecomp] >= before[OpDecomp] {
		t.Fatal("decomp count did not drop")
	}
	if after[OpModMulAdd] == 0 {
		t.Fatal("no fused modmuladd produced")
	}
	if err := ir.VerifyFunc(mod.Main()); err != nil {
		t.Fatal(err)
	}
}

func TestRNSLoopFusion(t *testing.T) {
	res := compiledCKKS(t, false)
	mod, err := Lower(res.Module, 2, 2)
	if err != nil {
		t.Fatal(err)
	}
	before := Analyze(mod.Main())
	if err := FuseRNSLoops().Run(mod); err != nil {
		t.Fatal(err)
	}
	after := Analyze(mod.Main())
	if after.Loops >= before.Loops {
		t.Fatalf("loop fusion did not reduce loop launches: %d -> %d", before.Loops, after.Loops)
	}
	if after.FusedLoops == 0 {
		t.Fatal("no fused loops produced")
	}
	if err := ir.VerifyFunc(mod.Main()); err != nil {
		t.Fatal(err)
	}
}

func TestLowerWithBootstrapExpands(t *testing.T) {
	res := compiledCKKS(t, true)
	mod, err := LowerFromCKKS(res)
	if err != nil {
		t.Fatal(err)
	}
	s := Analyze(mod.Main())
	noBoot := compiledCKKS(t, false)
	mod2, err := LowerFromCKKS(noBoot)
	if err != nil {
		t.Fatal(err)
	}
	s2 := Analyze(mod2.Main())
	if s.NTTs <= s2.NTTs {
		t.Fatal("bootstrap expansion did not add NTT work")
	}
}
