// Package fheclient is the client half of the serving layer's threat
// model: it owns the secret key and never sends it anywhere. Dial
// fetches the compiled program's spec from an aced daemon, Register
// generates a fresh key pair plus exactly the evaluation keys the
// program needs and uploads the public ones, and Infer encrypts a slot
// vector, streams the ciphertext through the server and decrypts the
// reply locally.
package fheclient

import (
	"bytes"
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math/rand/v2"
	"net/http"
	"strconv"
	"sync"
	"syscall"
	"time"

	"antace/internal/batch"
	"antace/internal/ckks"
	"antace/internal/fault"
	"antace/internal/obs"
	"antace/internal/serve/api"
)

// APIError is a non-2xx reply from the daemon, with the decoded server
// message and stable failure code when one was sent.
type APIError struct {
	Status     int
	Message    string
	Code       string        // fault-taxonomy code (EVAL_PANIC, ...) when the server sent one
	RetryAfter time.Duration // populated on 429/503 responses carrying Retry-After
	Epoch      uint64        // membership epoch from X-ACE-Epoch, when the server stamped one
}

func (e *APIError) Error() string {
	switch {
	case e.Message == "":
		return fmt.Sprintf("fheclient: server returned %d", e.Status)
	case e.Code != "":
		return fmt.Sprintf("fheclient: server returned %d [%s]: %s", e.Status, e.Code, e.Message)
	default:
		return fmt.Sprintf("fheclient: server returned %d: %s", e.Status, e.Message)
	}
}

// IsQueueFull reports whether the server pushed back with 429.
func (e *APIError) IsQueueFull() bool { return e.Status == http.StatusTooManyRequests }

// IsDeadline reports whether the server gave up on the request deadline.
func (e *APIError) IsDeadline() bool { return e.Status == http.StatusGatewayTimeout }

// retryable reports whether another attempt can succeed: queue pushback,
// a draining/restarting server, or an evaluation that died in a
// recovered panic (the idempotency key makes re-sending safe). Client
// errors and server deadline exhaustion are final.
func (e *APIError) retryable() bool {
	switch e.Status {
	case http.StatusTooManyRequests, http.StatusServiceUnavailable:
		return true
	case http.StatusInternalServerError:
		return e.Code == "EVAL_PANIC" || e.Code == "FAULT_INJECTED"
	default:
		return false
	}
}

// RetryPolicy tunes Infer's retry loop. The zero value is sane:
// DefaultRetryPolicy is applied by Dial; SetRetryPolicy overrides it;
// MaxAttempts=1 disables retries entirely.
type RetryPolicy struct {
	// MaxAttempts bounds total tries per call, the first included
	// (default 4).
	MaxAttempts int
	// BaseDelay seeds the exponential backoff (default 50ms); attempt k
	// waits BaseDelay×2^k with up to 50% random jitter subtracted, so
	// synchronized clients spread out.
	BaseDelay time.Duration
	// MaxDelay caps a single backoff sleep (default 2s).
	MaxDelay time.Duration
	// Budget caps the total time spent sleeping between attempts per
	// call (default 15s); the context deadline bounds everything anyway.
	Budget time.Duration
	// ReconnectWindow tolerates a daemon restart: while a connection is
	// refused outright (nothing listening — the window between a crash
	// and the recovered daemon binding its port), the client keeps
	// reconnecting with ReconnectDelay-capped backoff for up to this
	// long, and those attempts do not count against MaxAttempts. Zero
	// disables the treatment and refused connections consume ordinary
	// attempts (default 10s under Dial's policy).
	ReconnectWindow time.Duration
	// ReconnectDelay caps the sleep between reconnect probes during the
	// window (default 250ms) — restarts are bounded by recovery time,
	// not by load, so probing faster than ordinary backoff is safe.
	ReconnectDelay time.Duration
}

// DefaultRetryPolicy is the policy Dial installs.
func DefaultRetryPolicy() RetryPolicy {
	return RetryPolicy{MaxAttempts: 4, BaseDelay: 50 * time.Millisecond, MaxDelay: 2 * time.Second,
		Budget: 15 * time.Second, ReconnectWindow: 10 * time.Second, ReconnectDelay: 250 * time.Millisecond}
}

// WithDefaults fills unset policy fields with the documented defaults.
func (p RetryPolicy) WithDefaults() RetryPolicy {
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = 4
	}
	if p.BaseDelay <= 0 {
		p.BaseDelay = 50 * time.Millisecond
	}
	if p.MaxDelay <= 0 {
		p.MaxDelay = 2 * time.Second
	}
	if p.Budget <= 0 {
		p.Budget = 15 * time.Second
	}
	if p.ReconnectWindow > 0 && p.ReconnectDelay <= 0 {
		p.ReconnectDelay = 250 * time.Millisecond
	}
	return p
}

// Backoff computes the sleep before attempt number attempt (1-based
// count of failures so far), honoring a server Retry-After hint as the
// floor when it is longer than the computed delay. Exported so other
// retrying callers of the serving API (the cluster shipper, the router)
// pace themselves identically.
func (p RetryPolicy) Backoff(attempt int, retryAfter time.Duration) time.Duration {
	d := p.BaseDelay << (attempt - 1)
	if d > p.MaxDelay || d <= 0 {
		d = p.MaxDelay
	}
	// Full jitter over [d/2, d]: deterministic chaos runs rely on the
	// retry happening, not on its exact spacing.
	d = d/2 + time.Duration(rand.Int64N(int64(d/2)+1))
	if retryAfter > d {
		d = retryAfter
	}
	return d
}

// Client talks to one aced daemon. Infer is safe for concurrent use by
// multiple goroutines sharing the registered session; the stateful
// encryptor is serialized internally while HTTP round trips (the slow
// part) proceed in parallel.
type Client struct {
	base string
	hc   *http.Client
	spec api.ProgramSpec

	// Multi-endpoint dialing (DialMulti): bases is the full candidate
	// list and epIdx the one currently in use; retryable failures rotate
	// to the next candidate before re-attempting, so one dead or draining
	// front does not strand the client while its siblings serve. Empty
	// bases means the single-endpoint behavior, untouched.
	//
	// memEpoch is the cluster membership epoch behind bases: 0 until the
	// client has adopted a live /v1/cluster/membership view, after which
	// a 404 or an epoch-stamped error triggers a re-fetch instead of
	// cycling the stale list (see refreshMembership).
	epMu     sync.Mutex
	bases    []string
	epIdx    int
	memEpoch uint64

	params *ckks.Parameters
	enc    *ckks.Encoder

	retry RetryPolicy

	mu        sync.Mutex // guards the sampler-bearing encryptor
	encryptor *ckks.Encryptor
	decryptor *ckks.Decryptor
	sessionID string
}

// SetRetryPolicy replaces the retry policy Dial installed. Not safe to
// call concurrently with Infer.
func (c *Client) SetRetryPolicy(p RetryPolicy) { c.retry = p.WithDefaults() }

// Dial fetches the program spec and compiles the matching parameters
// (prime derivation is deterministic, so client and server rings agree
// bit for bit). A nil http.Client uses http.DefaultClient.
func Dial(ctx context.Context, baseURL string, hc *http.Client) (*Client, error) {
	if hc == nil {
		hc = http.DefaultClient
	}
	c := &Client{base: baseURL, hc: hc, retry: DefaultRetryPolicy()}
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, baseURL+api.PathProgram, nil)
	if err != nil {
		return nil, err
	}
	resp, err := hc.Do(req)
	if err != nil {
		return nil, fmt.Errorf("fheclient: fetching program spec: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, apiError(resp)
	}
	if err := json.NewDecoder(resp.Body).Decode(&c.spec); err != nil {
		return nil, fmt.Errorf("fheclient: decoding program spec: %w", err)
	}
	if c.params, err = ckks.ParamsFromBytes(c.spec.Params); err != nil {
		return nil, fmt.Errorf("fheclient: compiling server parameters: %w", err)
	}
	c.enc = ckks.NewEncoder(c.params)
	return c, nil
}

// DialMulti is Dial over a candidate endpoint list: the spec is fetched
// from the first endpoint that answers, and every retryable inference
// failure afterwards rotates to the next candidate before the retry.
// All endpoints must serve the same compiled program (a cluster of aced
// shards behind consistent hashing, or several acerouter fronts).
func DialMulti(ctx context.Context, baseURLs []string, hc *http.Client) (*Client, error) {
	if len(baseURLs) == 0 {
		return nil, fmt.Errorf("fheclient: no endpoints to dial")
	}
	var lastErr error
	for i, u := range baseURLs {
		c, err := Dial(ctx, u, hc)
		if err == nil {
			c.bases = append([]string(nil), baseURLs...)
			c.epIdx = i
			return c, nil
		}
		lastErr = err
	}
	return nil, fmt.Errorf("fheclient: all %d endpoints failed, last: %w", len(baseURLs), lastErr)
}

// endpoint returns the base URL requests currently target.
func (c *Client) endpoint() string {
	c.epMu.Lock()
	defer c.epMu.Unlock()
	if len(c.bases) == 0 {
		return c.base
	}
	return c.bases[c.epIdx%len(c.bases)]
}

// rotateEndpoint advances to the next candidate; a no-op under a single
// endpoint.
func (c *Client) rotateEndpoint() bool {
	c.epMu.Lock()
	defer c.epMu.Unlock()
	if len(c.bases) < 2 {
		return false
	}
	c.epIdx = (c.epIdx + 1) % len(c.bases)
	return true
}

// MembershipEpoch returns the cluster membership epoch the endpoint list
// was adopted from, or 0 while the client still runs on its dialed list.
func (c *Client) MembershipEpoch() uint64 {
	c.epMu.Lock()
	defer c.epMu.Unlock()
	return c.memEpoch
}

// refreshMembership re-fetches /v1/cluster/membership from the current
// candidates and adopts a strictly newer view as the endpoint list,
// reporting whether anything changed. Two guards keep it safe:
//
//   - Only a view whose epoch exceeds the one already adopted counts, so
//     one refresh per topology change — a 404 that persists after a
//     successful refresh is a genuinely unknown session, not staleness.
//   - The view is adopted only when at least one current base appears in
//     its member list. Shards list themselves; a router's view lists its
//     shards, never itself. The overlap test therefore lets shard-dialed
//     clients track the ring while router-dialed clients stay behind the
//     router instead of silently degrading to direct shard access.
func (c *Client) refreshMembership(ctx context.Context) bool {
	c.epMu.Lock()
	bases := append([]string(nil), c.bases...)
	if len(bases) == 0 {
		bases = []string{c.base}
	}
	known := c.memEpoch
	c.epMu.Unlock()

	for _, b := range bases {
		m, err := c.fetchMembership(ctx, b)
		if err != nil || m.Epoch <= known || len(m.Members) == 0 {
			continue
		}
		overlap := false
		for _, member := range m.Members {
			for _, cur := range bases {
				if member == cur {
					overlap = true
					break
				}
			}
			if overlap {
				break
			}
		}
		if !overlap {
			continue
		}
		c.epMu.Lock()
		adopted := m.Epoch > c.memEpoch
		if adopted {
			c.memEpoch = m.Epoch
			c.bases = append([]string(nil), m.Members...)
			c.epIdx = 0
		}
		c.epMu.Unlock()
		if adopted {
			return true
		}
	}
	return false
}

// fetchMembership performs one GET /v1/cluster/membership round trip.
func (c *Client) fetchMembership(ctx context.Context, base string) (api.Membership, error) {
	ctx, cancel := context.WithTimeout(ctx, 5*time.Second)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+api.PathClusterMembership, nil)
	if err != nil {
		return api.Membership{}, err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return api.Membership{}, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return api.Membership{}, apiError(resp)
	}
	var m api.Membership
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<20)).Decode(&m); err != nil {
		return api.Membership{}, fmt.Errorf("fheclient: decoding membership: %w", err)
	}
	return m, nil
}

// Spec returns the program spec fetched at Dial time.
func (c *Client) Spec() api.ProgramSpec { return c.spec }

// Params returns the compiled parameter set.
func (c *Client) Params() *ckks.Parameters { return c.params }

// SessionID returns the registered session, or "" before Register.
func (c *Client) SessionID() string { return c.sessionID }

// Register generates a key pair, derives the evaluation keys the program
// spec demands (relinearization plus the exact rotation set, including
// the bootstrap circuit's), uploads the public bundle and stores the
// returned session ID. The secret key stays inside the Client. A nil
// seed draws fresh randomness; pass one only in tests.
func (c *Client) Register(ctx context.Context, seed *[32]byte) (string, error) {
	kg := ckks.NewKeyGenerator(c.params, seed)
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	keys := &ckks.EvaluationKeySet{
		Galois: kg.GenGaloisKeys(c.spec.Rotations, c.spec.Conjugation, sk),
	}
	if c.spec.NeedRlk {
		keys.Rlk = kg.GenRelinearizationKey(sk)
	}
	bundle, err := keys.MarshalBinary()
	if err != nil {
		return "", fmt.Errorf("fheclient: encoding key bundle: %w", err)
	}

	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.endpoint()+api.PathSessions, bytes.NewReader(bundle))
	if err != nil {
		return "", err
	}
	req.Header.Set("Content-Type", api.ContentTypeBinary)
	resp, err := c.hc.Do(req)
	if err != nil {
		return "", fmt.Errorf("fheclient: uploading keys: %w", err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		return "", apiError(resp)
	}
	var reply api.SessionReply
	if err := json.NewDecoder(resp.Body).Decode(&reply); err != nil {
		return "", fmt.Errorf("fheclient: decoding session reply: %w", err)
	}

	c.mu.Lock()
	c.sessionID = reply.SessionID
	c.encryptor = ckks.NewEncryptor(c.params, pk)
	c.decryptor = ckks.NewDecryptor(c.params, sk)
	c.mu.Unlock()
	return reply.SessionID, nil
}

// Encrypt packs a slot vector at the program's input level and scale.
// Against a batching server (spec.BatchStride > 1) the vector is
// encoded strided into lane 0 — logical slot i at physical slot
// i·stride — which is the layout the server's lane-transformed program
// consumes; the server moves the ciphertext to its assigned lane with a
// single rotation at pack time.
func (c *Client) Encrypt(values []float64) (*ckks.Ciphertext, error) {
	if len(values) != c.spec.VecLen {
		return nil, fmt.Errorf("fheclient: input length %d, program compiled for %d", len(values), c.spec.VecLen)
	}
	if s := c.spec.BatchStride; s > 1 {
		exp, err := batch.ExpandLane(values, 0, s)
		if err != nil {
			return nil, fmt.Errorf("fheclient: lane encoding: %w", err)
		}
		values = exp
	}
	pt, err := c.enc.EncodeReal(values, c.spec.InputLevel, c.spec.InputScale)
	if err != nil {
		return nil, err
	}
	c.mu.Lock()
	defer c.mu.Unlock()
	if c.encryptor == nil {
		return nil, fmt.Errorf("fheclient: not registered (call Register first)")
	}
	return c.encryptor.Encrypt(pt), nil
}

// Decrypt recovers the slot vector from a solo result ciphertext. For
// replies from a batched evaluation use DecryptLane with the lane and
// stride the response headers carried.
func (c *Client) Decrypt(ct *ckks.Ciphertext) ([]float64, error) {
	return c.DecryptLane(ct, 0, c.spec.BatchStride)
}

// DecryptLane recovers this caller's slot vector from a (possibly
// shared) result ciphertext: decrypt, decode the strided layout and
// keep the slots at i·stride+lane. stride <= 1 decodes a plain solo
// reply. Extraction is pure client-side index math on decoded slots —
// it costs no homomorphic operation.
func (c *Client) DecryptLane(ct *ckks.Ciphertext, lane, stride int) ([]float64, error) {
	c.mu.Lock()
	dec := c.decryptor
	c.mu.Unlock()
	if dec == nil {
		return nil, fmt.Errorf("fheclient: not registered (call Register first)")
	}
	if stride <= 1 {
		return c.enc.DecodeReal(dec.Decrypt(ct), c.spec.VecLen), nil
	}
	wide := c.enc.DecodeReal(dec.Decrypt(ct), c.spec.VecLen*stride)
	out, err := batch.ExtractLane(wide, lane, stride)
	if err != nil {
		return nil, fmt.Errorf("fheclient: lane extraction: %w", err)
	}
	return out, nil
}

// transientError marks a failure where the request may never have
// reached the server, or its response was lost in flight — safe to
// retry because the idempotency key prevents double execution.
type transientError struct{ err error }

func (e *transientError) Error() string { return e.err.Error() }
func (e *transientError) Unwrap() error { return e.err }

// InferCipher streams one ciphertext through the server and returns the
// encrypted result. The request deadline is taken from ctx and forwarded
// to the server so both sides give up together.
//
// Transient failures — connection errors, 429/503 pushback, and 500s
// whose code marks a recovered panic — are retried under the client's
// RetryPolicy with exponential backoff plus jitter, honoring a server
// Retry-After hint. Every attempt of one call carries the same
// randomly drawn idempotency key, so a retry whose predecessor actually
// executed replays the stored result instead of running the program
// twice.
//
// Every attempt also carries one trace id in the X-ACE-Trace header —
// taken from ctx (obs.WithTrace) when the caller supplied one, minted
// otherwise — so one logical inference is a single greppable id across
// the client's retries and the server's structured logs.
func (c *Client) InferCipher(ctx context.Context, ct *ckks.Ciphertext) (*ckks.Ciphertext, error) {
	out, _, _, err := c.InferCipherLane(ctx, ct)
	return out, err
}

// InferCipherLane is InferCipher plus the reply's lane coordinates:
// when the server evaluated the request inside a shared batched
// ciphertext, stride > 1 and lane locate this caller's slots for
// DecryptLane. A solo reply returns lane 0, stride 0.
func (c *Client) InferCipherLane(ctx context.Context, ct *ckks.Ciphertext) (*ckks.Ciphertext, int, int, error) {
	c.mu.Lock()
	id := c.sessionID
	c.mu.Unlock()
	if id == "" {
		return nil, 0, 0, fmt.Errorf("fheclient: not registered (call Register first)")
	}
	body, err := ct.MarshalBinary()
	if err != nil {
		return nil, 0, 0, fmt.Errorf("fheclient: encoding ciphertext: %w", err)
	}

	trace := obs.TraceID(ctx)
	if !obs.ValidTraceID(trace) {
		trace = obs.NewTraceID()
		ctx = obs.WithTrace(ctx, trace)
	}
	idemKey := fmt.Sprintf("%016x%016x", rand.Uint64(), rand.Uint64())
	pol := c.retry.WithDefaults()
	var slept time.Duration
	var refusedSince time.Time
	refreshed := false
	for attempt := 1; ; attempt++ {
		out, lane, stride, err := c.inferOnce(ctx, id, idemKey, trace, body)
		if err == nil {
			return out, lane, stride, nil
		}
		// Under DialMulti a failed endpoint is sidestepped, not waited out:
		// rotate to the next candidate before any retry accounting, so the
		// reconnect probes below and the ordinary backoff attempts each hit
		// a different front. The shared idempotency key keeps the cross-
		// endpoint retry exactly-once.
		if isConnRefused(err) || func() bool { _, r := classify(err); return r }() {
			c.rotateEndpoint()
		}
		// A refused connection means nothing is listening — the window
		// between a daemon crash and its recovered successor binding the
		// port. Within ReconnectWindow these probes ride for free: they
		// do not consume attempts or backoff budget, and they re-probe on
		// the short ReconnectDelay cadence rather than ordinary backoff.
		if pol.ReconnectWindow > 0 && isConnRefused(err) {
			if refusedSince.IsZero() {
				refusedSince = time.Now()
			}
			if time.Since(refusedSince) < pol.ReconnectWindow {
				select {
				case <-ctx.Done():
					return nil, 0, 0, ctx.Err()
				case <-time.After(pol.ReconnectDelay):
				}
				attempt--
				continue
			}
			// Window exhausted: fall through to ordinary accounting.
		} else {
			refusedSince = time.Time{}
		}
		retryAfter, retryable := classify(err)
		// A 404 from a shard means it does not hold the session — after a
		// membership change, the usual cause is that the endpoint list is
		// stale and the session's owner moved. Instead of burning the rest
		// of the retry budget cycling dead candidates, re-fetch the
		// membership; a strictly newer adopted view makes this one failure
		// retryable against the fresh list. The epoch guard inside
		// refreshMembership bounds this to once per topology change, so a
		// 404 that persists on current endpoints stays final.
		if !retryable && ctx.Err() == nil {
			var ae *APIError
			if errors.As(err, &ae) && (ae.Status == http.StatusNotFound || ae.Epoch > c.MembershipEpoch()) {
				switch {
				case c.refreshMembership(ctx):
					refreshed = true
					retryable = true
				case refreshed && ae.Status == http.StatusNotFound && c.rotateEndpoint():
					// The list is already fresh (this call adopted it), so
					// the owner is another member: keep cycling the FRESH
					// list within the attempt budget — what made the old
					// behavior wrong was cycling a stale one.
					retryable = true
				}
			}
		}
		if !retryable || attempt >= pol.MaxAttempts || ctx.Err() != nil {
			var te *transientError
			if errors.As(err, &te) {
				err = te.err
			}
			return nil, 0, 0, err
		}
		d := pol.Backoff(attempt, retryAfter)
		if slept+d > pol.Budget {
			return nil, 0, 0, fmt.Errorf("fheclient: retry budget %v exhausted after %d attempts: %w", pol.Budget, attempt, err)
		}
		select {
		case <-ctx.Done():
			return nil, 0, 0, ctx.Err()
		case <-time.After(d):
			slept += d
		}
	}
}

// isConnRefused reports a connection refused outright (no listener on
// the port), as opposed to a reset or timeout on an established one.
func isConnRefused(err error) bool {
	return errors.Is(err, syscall.ECONNREFUSED)
}

// classify decides whether err is worth another attempt and extracts any
// server pacing hint.
func classify(err error) (retryAfter time.Duration, retryable bool) {
	var apiErr *APIError
	if errors.As(err, &apiErr) {
		return apiErr.RetryAfter, apiErr.retryable()
	}
	var te *transientError
	return 0, errors.As(err, &te)
}

// inferOnce performs one HTTP round trip of InferCipher, returning the
// reply's lane coordinates alongside the ciphertext (0, 0 on a solo
// reply without lane headers).
func (c *Client) inferOnce(ctx context.Context, id, idemKey, trace string, body []byte) (*ckks.Ciphertext, int, int, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodPost, c.endpoint()+api.PathInfer, bytes.NewReader(body))
	if err != nil {
		return nil, 0, 0, err
	}
	req.Header.Set("Content-Type", api.ContentTypeBinary)
	req.Header.Set(api.HeaderSession, id)
	req.Header.Set(api.HeaderIdemKey, idemKey)
	req.Header.Set(api.HeaderTrace, trace)
	if dl, ok := ctx.Deadline(); ok {
		// Give the server slightly less than our own budget, so its 504
		// reaches us before ctx aborts the connection and we lose the
		// diagnosis.
		remaining := time.Until(dl)
		margin := remaining / 10
		if margin < 50*time.Millisecond {
			margin = 50 * time.Millisecond
		}
		if ms := (remaining - margin).Milliseconds(); ms > 0 {
			req.Header.Set(api.HeaderDeadlineMs, strconv.FormatInt(ms, 10))
		}
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		if ctx.Err() != nil {
			return nil, 0, 0, fmt.Errorf("fheclient: inference request: %w", err)
		}
		return nil, 0, 0, &transientError{fmt.Errorf("fheclient: inference request: %w", err)}
	}
	defer resp.Body.Close()
	// Chaos hook: the server already answered, but the response is lost
	// before we read it — exactly the window where only the idempotency
	// key keeps a retry from executing the program twice.
	if ferr := fault.Inject(fault.ClientConnReset); ferr != nil {
		return nil, 0, 0, &transientError{fmt.Errorf("fheclient: inference request: connection reset: %w", ferr)}
	}
	if resp.StatusCode != http.StatusOK {
		return nil, 0, 0, apiError(resp)
	}
	var lane, stride int
	if h := resp.Header.Get(api.HeaderLaneStride); h != "" {
		if stride, err = strconv.Atoi(h); err != nil {
			return nil, 0, 0, fmt.Errorf("fheclient: bad %s header %q", api.HeaderLaneStride, h)
		}
		if h := resp.Header.Get(api.HeaderLane); h != "" {
			if lane, err = strconv.Atoi(h); err != nil {
				return nil, 0, 0, fmt.Errorf("fheclient: bad %s header %q", api.HeaderLane, h)
			}
		}
		if stride < 0 || lane < 0 || (stride > 1 && lane >= stride) {
			return nil, 0, 0, fmt.Errorf("fheclient: lane %d out of range for stride %d", lane, stride)
		}
	}
	data, err := io.ReadAll(resp.Body)
	if err != nil {
		return nil, 0, 0, &transientError{fmt.Errorf("fheclient: reading result: %w", err)}
	}
	out := &ckks.Ciphertext{}
	if err := out.UnmarshalBinary(data); err != nil {
		return nil, 0, 0, fmt.Errorf("fheclient: decoding result: %w", err)
	}
	return out, lane, stride, nil
}

// Infer runs one encrypted inference end to end: encrypt locally, stream
// through the server, decrypt locally. Against a batching server the
// reply may be a shared ciphertext; the lane headers say which
// interleaved slots are this call's result and Infer extracts them
// transparently, so callers never see the batching.
func (c *Client) Infer(ctx context.Context, values []float64) ([]float64, error) {
	ct, err := c.Encrypt(values)
	if err != nil {
		return nil, err
	}
	out, lane, stride, err := c.InferCipherLane(ctx, ct)
	if err != nil {
		return nil, err
	}
	if stride <= 1 {
		// No lane headers: a solo reply, still in the strided layout when
		// the program spec says the server batches.
		return c.Decrypt(out)
	}
	return c.DecryptLane(out, lane, stride)
}

// Drop deletes the registered session server-side.
func (c *Client) Drop(ctx context.Context) error {
	c.mu.Lock()
	id := c.sessionID
	c.mu.Unlock()
	if id == "" {
		return nil
	}
	req, err := http.NewRequestWithContext(ctx, http.MethodDelete, c.endpoint()+api.PathSessions+"/"+id, nil)
	if err != nil {
		return err
	}
	resp, err := c.hc.Do(req)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNoContent {
		return apiError(resp)
	}
	c.mu.Lock()
	c.sessionID = ""
	c.mu.Unlock()
	return nil
}

// apiError decodes a non-2xx response into an APIError.
func apiError(resp *http.Response) error {
	e := &APIError{Status: resp.StatusCode}
	var reply api.ErrorReply
	if err := json.NewDecoder(io.LimitReader(resp.Body, 1<<16)).Decode(&reply); err == nil {
		e.Message = reply.Error
		e.Code = reply.Code
	}
	if sec, err := strconv.Atoi(resp.Header.Get("Retry-After")); err == nil {
		e.RetryAfter = time.Duration(sec) * time.Second
	}
	if ep, err := strconv.ParseUint(resp.Header.Get(api.HeaderEpoch), 10, 64); err == nil {
		e.Epoch = ep
	}
	return e
}
