package fheclient

import (
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"antace/internal/serve/api"
)

// membershipServer serves a fixed membership view.
func membershipServer(t *testing.T, view func() api.Membership) *httptest.Server {
	t.Helper()
	mux := http.NewServeMux()
	mux.HandleFunc("GET "+api.PathClusterMembership, func(w http.ResponseWriter, r *http.Request) {
		_ = json.NewEncoder(w).Encode(view())
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	return ts
}

// TestRefreshMembershipAdoptsShardView: a client dialed at shards (the
// serving endpoint lists itself in the view) adopts a strictly newer
// membership and re-targets its endpoint list at it.
func TestRefreshMembershipAdoptsShardView(t *testing.T) {
	var self string
	ts := membershipServer(t, func() api.Membership {
		return api.Membership{Epoch: 3, Members: []string{self, "http://other-shard"}}
	})
	self = ts.URL

	c := &Client{base: ts.URL, hc: http.DefaultClient, bases: []string{ts.URL}}
	if !c.refreshMembership(context.Background()) {
		t.Fatal("shard-dialed client refused a newer overlapping view")
	}
	if c.MembershipEpoch() != 3 {
		t.Fatalf("epoch %d after adoption, want 3", c.MembershipEpoch())
	}
	if len(c.bases) != 2 || c.endpoint() != self {
		t.Fatalf("adopted bases %v, endpoint %s", c.bases, c.endpoint())
	}

	// The same epoch again is a no-op: one refresh per topology change.
	if c.refreshMembership(context.Background()) {
		t.Fatal("equal-epoch view adopted twice")
	}
}

// TestRefreshMembershipRejectsRouterView: a router's membership lists
// its shards, never itself — a client dialed at the router must NOT
// adopt that list, or it would silently degrade to direct shard access
// behind the router's back.
func TestRefreshMembershipRejectsRouterView(t *testing.T) {
	ts := membershipServer(t, func() api.Membership {
		return api.Membership{Epoch: 9, Members: []string{"http://shard-1", "http://shard-2"}}
	})
	c := &Client{base: ts.URL, hc: http.DefaultClient}
	if c.refreshMembership(context.Background()) {
		t.Fatal("router-dialed client adopted the shard list")
	}
	if c.MembershipEpoch() != 0 || len(c.bases) != 0 {
		t.Fatalf("client state mutated: epoch %d bases %v", c.MembershipEpoch(), c.bases)
	}
}

// TestAPIErrorCarriesEpoch: apiError lifts the X-ACE-Epoch stamp into
// APIError.Epoch so the retry loop can detect an epoch mismatch.
func TestAPIErrorCarriesEpoch(t *testing.T) {
	mux := http.NewServeMux()
	mux.HandleFunc("/x", func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set(api.HeaderEpoch, "17")
		w.WriteHeader(http.StatusNotFound)
		_ = json.NewEncoder(w).Encode(api.ErrorReply{Error: "unknown session"})
	})
	ts := httptest.NewServer(mux)
	t.Cleanup(ts.Close)
	resp, err := http.Get(ts.URL + "/x")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	ae, ok := apiError(resp).(*APIError)
	if !ok {
		t.Fatal("apiError did not return *APIError")
	}
	if ae.Status != http.StatusNotFound || ae.Epoch != 17 {
		t.Fatalf("APIError = %+v, want status 404 epoch 17", ae)
	}
}
