package fheclient

import (
	"context"
	"io"
	"net"
	"net/http"
	"testing"
	"time"

	"antace/internal/ckks"
	"antace/internal/ring"
	"antace/internal/serve/api"
)

// echoHandler answers /v1/infer by returning the posted ciphertext
// bytes unchanged — enough for InferCipher's response decode without a
// real evaluator behind it.
func echoHandler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("POST "+api.PathInfer, func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		w.Header().Set("Content-Type", api.ContentTypeBinary)
		w.WriteHeader(http.StatusOK)
		_, _ = w.Write(body)
	})
	return mux
}

// smallCiphertext builds a real (tiny) ciphertext so the client's
// marshal/unmarshal path runs for real.
func smallCiphertext(t *testing.T) *ckks.Ciphertext {
	t.Helper()
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: 8, LogQ: []int{50, 40}, LogP: []int{50}, LogScale: 40,
	})
	if err != nil {
		t.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params, ring.SeedFromInt(71))
	sk := kg.GenSecretKey()
	pk := kg.GenPublicKey(sk)
	enc := ckks.NewEncoder(params)
	vals := make([]float64, 1<<7)
	for i := range vals {
		vals[i] = float64(i) / 300
	}
	pt, err := enc.EncodeReal(vals, 1, float64(uint64(1)<<40))
	if err != nil {
		t.Fatal(err)
	}
	return ckks.NewEncryptor(params, pk).Encrypt(pt)
}

// serveEcho serves the echo handler on addr until the returned stop
// function runs.
func serveEcho(t *testing.T, addr string) (string, func()) {
	t.Helper()
	var l net.Listener
	var err error
	for i := 0; i < 50; i++ {
		if l, err = net.Listen("tcp", addr); err == nil {
			break
		}
		time.Sleep(10 * time.Millisecond)
	}
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	srv := &http.Server{Handler: echoHandler()}
	go func() { _ = srv.Serve(l) }()
	return l.Addr().String(), func() { _ = srv.Close() }
}

// TestReconnectWindowSurvivesRestart: the daemon vanishes mid-session
// (listener closed, connections refused) and comes back on the same
// port; a client with a ReconnectWindow rides out the outage without
// burning its ordinary retry attempts.
func TestReconnectWindowSurvivesRestart(t *testing.T) {
	addr, stop := serveEcho(t, "127.0.0.1:0")
	ct := smallCiphertext(t)

	c := &Client{base: "http://" + addr, hc: http.DefaultClient, sessionID: "s"}
	c.SetRetryPolicy(RetryPolicy{
		MaxAttempts:     2,
		BaseDelay:       10 * time.Millisecond,
		ReconnectWindow: 10 * time.Second,
		ReconnectDelay:  25 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	if _, err := c.InferCipher(ctx, ct); err != nil {
		t.Fatalf("inference against the live server: %v", err)
	}

	// Take the daemon down and bring it back after a restart-sized gap.
	stop()
	const downtime = 400 * time.Millisecond
	restarted := make(chan func(), 1)
	go func() {
		time.Sleep(downtime)
		_, stop2 := serveEcho(t, addr)
		restarted <- stop2
	}()

	start := time.Now()
	_, err := c.InferCipher(ctx, ct)
	elapsed := time.Since(start)
	defer (<-restarted)()
	if err != nil {
		t.Fatalf("inference across the restart: %v", err)
	}
	// With MaxAttempts=2 and ~10ms backoff, failure would have come well
	// inside the downtime if refused probes consumed ordinary attempts.
	if elapsed < downtime/2 {
		t.Fatalf("reconnect succeeded implausibly fast (%v) — was the listener ever down?", elapsed)
	}
}

// TestReconnectWindowExpires: when the daemon never comes back, the
// window closes and the call fails with the underlying connection error
// instead of probing forever.
func TestReconnectWindowExpires(t *testing.T) {
	addr, stop := serveEcho(t, "127.0.0.1:0")
	ct := smallCiphertext(t)
	stop()

	c := &Client{base: "http://" + addr, hc: http.DefaultClient, sessionID: "s"}
	c.SetRetryPolicy(RetryPolicy{
		MaxAttempts:     2,
		BaseDelay:       5 * time.Millisecond,
		ReconnectWindow: 150 * time.Millisecond,
		ReconnectDelay:  20 * time.Millisecond,
	})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()

	start := time.Now()
	_, err := c.InferCipher(ctx, ct)
	if err == nil {
		t.Fatal("inference against a dead server succeeded")
	}
	if !isConnRefused(err) {
		t.Fatalf("expected a connection-refused error, got %v", err)
	}
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("window expiry took %v — probing did not stop", elapsed)
	}
}

// TestReconnectDisabledCountsAttempts: with ReconnectWindow zero a
// refused connection is an ordinary transient failure bounded by
// MaxAttempts.
func TestReconnectDisabledCountsAttempts(t *testing.T) {
	addr, stop := serveEcho(t, "127.0.0.1:0")
	ct := smallCiphertext(t)
	stop()

	c := &Client{base: "http://" + addr, hc: http.DefaultClient, sessionID: "s"}
	c.SetRetryPolicy(RetryPolicy{MaxAttempts: 2, BaseDelay: 5 * time.Millisecond})
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if _, err := c.InferCipher(ctx, ct); err == nil {
		t.Fatal("inference against a dead server succeeded")
	}
}
