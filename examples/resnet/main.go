// resnet compiles a reduced residual network (the topology of the
// paper's evaluation models at CI scale) with compiler-planned
// bootstrapping, and runs real encrypted inference: every ReLU is
// approximated by a composite sign polynomial, and the ciphertext is
// refreshed to the minimal level before each one.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand/v2"
	"os"
	"time"

	"antace"
	"antace/internal/onnx"
	"antace/internal/tensor"
)

func main() {
	depth := flag.Int("depth", 8, "ResNet depth (6k+2)")
	flag.Parse()

	model, err := onnx.BuildResNet(onnx.ResNetConfig{
		Depth: *depth, InputSize: 8, BaseChannels: 4, Classes: 10,
	})
	if err != nil {
		log.Fatal(err)
	}

	start := time.Now()
	prog, err := ace.Compile(model, ace.TestProfile())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("compiled ResNet-%d in %s\n", *depth, time.Since(start).Round(time.Millisecond))
	ace.Describe(prog, os.Stdout)

	start = time.Now()
	rt, err := ace.NewRuntime(prog)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("key generation (%d Galois keys): %s\n", rt.KeyCount(), time.Since(start).Round(time.Millisecond))

	rng := rand.New(rand.NewPCG(9, 9))
	image := tensor.New(1, 3, 8, 8)
	for i := range image.Data {
		image.Data[i] = rng.Float64()*2 - 1
	}

	start = time.Now()
	enc, err := rt.Infer(image)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("encrypted inference: %s\n\n", time.Since(start).Round(time.Millisecond))

	plain, _ := ace.InferPlain(prog, image)
	sim, _ := ace.InferSim(prog, image)
	fmt.Println("class  encrypted    simulator    plaintext")
	for k := 0; k < 10; k++ {
		fmt.Printf("%5d  %9.4f  %11.4f  %11.4f\n", k, enc.Data[k], sim.Data[k], plain.Data[k])
	}
	fmt.Printf("\nargmax: encrypted=%d simulator=%d plaintext=%d\n",
		tensor.ArgMax(enc), tensor.ArgMax(sim), tensor.ArgMax(plain))
}
