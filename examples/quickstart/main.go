// Quickstart: compile a small model and run encrypted inference end to
// end — the fastest path from an ONNX graph to FHE execution.
package main

import (
	"fmt"
	"log"
	"math/rand/v2"
	"os"

	"antace"
	"antace/internal/onnx"
	"antace/internal/tensor"
)

func main() {
	// 1. A model: a 64-feature, 10-class linear classifier (the kind of
	// gemv workload the paper's running example uses). Real users load
	// an exported file with ace.LoadONNX.
	model, err := onnx.BuildLinear(64, 10, 42)
	if err != nil {
		log.Fatal(err)
	}

	// 2. Compile. TestProfile selects a reduced ring degree so this demo
	// finishes in well under a second; PaperProfile gives 128-bit
	// security.
	prog, err := ace.Compile(model, ace.TestProfile())
	if err != nil {
		log.Fatal(err)
	}
	ace.Describe(prog, os.Stdout)

	// 3. Instantiate keys and encrypt an input.
	rt, err := ace.NewRuntime(prog)
	if err != nil {
		log.Fatal(err)
	}
	rng := rand.New(rand.NewPCG(1, 2))
	image := tensor.New(1, 64)
	for i := range image.Data {
		image.Data[i] = rng.Float64()*2 - 1
	}

	// 4. Encrypted inference vs the plaintext reference.
	encrypted, err := rt.Infer(image)
	if err != nil {
		log.Fatal(err)
	}
	plain, err := ace.InferPlain(prog, image)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nclass  encrypted   plaintext")
	for k := 0; k < 10; k++ {
		fmt.Printf("%5d  %9.5f  %9.5f\n", k, encrypted.Data[k], plain.Data[k])
	}
	fmt.Printf("\npredicted class (encrypted): %d, (plaintext): %d\n",
		tensor.ArgMax(encrypted), tensor.ArgMax(plain))
}
