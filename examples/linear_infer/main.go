// linear_infer reproduces the paper's running example (§4, Figure 4): a
// single-Gemm "linear_infer" model is lowered through every IR level,
// and the program prints the NN, VECTOR, SIHE and CKKS listings the
// paper walks through (Listings 1–4), followed by an encrypted run.
package main

import (
	"fmt"
	"log"
	"strings"

	"antace"
	"antace/internal/ir"
	"antace/internal/nnir"
	"antace/internal/onnx"
	"antace/internal/sihe"
	"antace/internal/tensor"
	"antace/internal/vecir"
)

func headIR(name string, mod *ir.Module, lines int) {
	fmt.Printf("===== %s IR =====\n", name)
	text := mod.Main().String()
	split := strings.Split(text, "\n")
	if len(split) > lines {
		fmt.Println(strings.Join(split[:lines], "\n"))
		fmt.Printf("  ... (%d more lines)\n", len(split)-lines)
	} else {
		fmt.Println(text)
	}
	fmt.Println()
}

func main() {
	// The paper's model: image <84x1> through a 10x84 weight + bias.
	model, err := onnx.BuildLinear(84, 10, 7)
	if err != nil {
		log.Fatal(err)
	}

	// Walk the lowering manually to show each level (ace.Compile does
	// all of this in one call).
	nn, err := nnir.Import(model)
	if err != nil {
		log.Fatal(err)
	}
	headIR("NN", nn, 8) // the paper's Listing 1

	vres, err := vecir.Lower(nn, vecir.Options{})
	if err != nil {
		log.Fatal(err)
	}
	headIR("VECTOR", vres.Module, 12) // Listing 2: rolls and masked mults

	sm, err := sihe.Lower(vres.Module, sihe.Options{})
	if err != nil {
		log.Fatal(err)
	}
	headIR("SIHE", sm, 12) // Listing 3: rotate/mul/encode on Cipher/Plain

	prog, err := ace.Compile(model, ace.TestProfile())
	if err != nil {
		log.Fatal(err)
	}
	headIR("CKKS", prog.CKKS.Module, 14) // Listing 4: levels, scales, rescale

	// Encrypted execution.
	rt, err := ace.NewRuntime(prog)
	if err != nil {
		log.Fatal(err)
	}
	image := tensor.New(1, 84)
	for i := range image.Data {
		image.Data[i] = float64(i%7) / 7
	}
	enc, err := rt.Infer(image)
	if err != nil {
		log.Fatal(err)
	}
	plain, _ := ace.InferPlain(prog, image)
	fmt.Println("encrypted output :", fmtVec(enc.Data))
	fmt.Println("plaintext output :", fmtVec(plain.Data))
}

func fmtVec(v []float64) string {
	parts := make([]string, len(v))
	for i, x := range v {
		parts[i] = fmt.Sprintf("%.4f", x)
	}
	return strings.Join(parts, " ")
}
