// approx_relu demonstrates the nonlinear-function machinery the SIHE IR
// uses (§4.3): composite minimax sign polynomials for ReLU, the Remez
// solver, and a direct homomorphic evaluation of the resulting
// composition on a ciphertext.
package main

import (
	"fmt"
	"log"
	"math"

	"antace/internal/ckks"
	"antace/internal/poly"
	"antace/internal/ring"
)

func main() {
	// 1. Build sign compositions at a few precisions and report their
	// depth/error trade-off.
	fmt.Println("sign(x) composite approximations on [-1,1] \\ (-eps,eps):")
	fmt.Printf("%8s %6s %8s %8s %12s\n", "eps", "alpha", "stages", "depth", "max error")
	for _, cfg := range []struct {
		eps   float64
		alpha int
	}{{1.0 / 8, 5}, {1.0 / 16, 9}, {1.0 / 32, 11}} {
		stages, err := poly.SignComposite(cfg.eps, cfg.alpha)
		if err != nil {
			log.Fatal(err)
		}
		worst := 0.0
		for x := cfg.eps; x <= 1; x += 1e-3 {
			if e := math.Abs(poly.EvalComposite(stages, x) - 1); e > worst {
				worst = e
			}
		}
		fmt.Printf("%8.4f %6d %8d %8d %12.2e\n", cfg.eps, cfg.alpha, len(stages), poly.CompositeDepth(stages), worst)
	}

	// 2. The Remez exchange algorithm on its own.
	p, eps, err := poly.Remez(math.Sqrt, 0.25, 1, 8, 30)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("\nRemez: degree-8 minimax of sqrt on [0.25,1]: levelled error %.2e (measured %.2e)\n",
		eps, poly.MaxError(p, math.Sqrt, 0.25, 1, 4000))

	// 3. Homomorphic ReLU on a real ciphertext.
	params, err := ckks.NewParameters(ckks.ParametersLiteral{
		LogN: 9, LogQ: append([]int{50}, repeat(40, 17)...), LogP: []int{50, 50}, LogScale: 40,
	})
	if err != nil {
		log.Fatal(err)
	}
	kg := ckks.NewKeyGenerator(params, ring.SeedFromInt(5))
	sk := kg.GenSecretKey()
	keys := &ckks.EvaluationKeySet{Rlk: kg.GenRelinearizationKey(sk)}
	enc := ckks.NewEncoder(params)
	encryptor := ckks.NewEncryptorFromSecretKey(params, sk)
	dec := ckks.NewDecryptor(params, sk)
	eval := ckks.NewEvaluator(params, keys)

	bound := 8.0
	vals := make([]float64, params.Slots())
	for i := range vals {
		vals[i] = -bound + 2*bound*float64(i)/float64(len(vals)-1)
	}
	pt, _ := enc.EncodeReal(vals, params.MaxLevel(), params.DefaultScale())
	ct := encryptor.Encrypt(pt)

	stages, err := poly.SignComposite(0.125, 6)
	if err != nil {
		log.Fatal(err)
	}
	out, err := eval.EvaluateReLU(ct, stages, bound)
	if err != nil {
		log.Fatal(err)
	}
	got := enc.DecodeReal(dec.Decrypt(out), len(vals))
	fmt.Printf("\nhomomorphic ReLU over [-%g, %g] (levels consumed: %d):\n", bound, bound, params.MaxLevel()-out.Level())
	fmt.Printf("%10s %12s %12s\n", "x", "relu_fhe(x)", "max(0,x)")
	for _, idx := range []int{0, len(vals) / 4, len(vals) / 2, 3 * len(vals) / 4, len(vals) - 1} {
		fmt.Printf("%10.3f %12.5f %12.5f\n", vals[idx], got[idx], math.Max(0, vals[idx]))
	}
}

func repeat(v, n int) []int {
	out := make([]int, n)
	for i := range out {
		out[i] = v
	}
	return out
}
