GO ?= go

.PHONY: build test verify vet race bench bench-fusion bench-batch serve-smoke obs-smoke chaos durability cluster-chaos cluster-membership-chaos autotune

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Static analysis plus a race-instrumented build of every package: vet
# catches the misuse classes Go's compiler lets through, and the -race
# build surfaces code that cannot even compile under instrumentation
# before a racy test run would.
vet:
	$(GO) vet ./...
	$(GO) build -race ./...

# Race-test the concurrency-bearing packages: the ring engine, the CKKS
# evaluator and the bootstrapper fan limb work out across the internal/par
# worker pool, and the serving layer runs a worker pool of evaluators over
# a shared session cache. ACE_WORKERS=8 forces parallel scheduling even on
# single-core CI machines.
race:
	ACE_WORKERS=8 $(GO) test -race ./internal/ring/... ./internal/ckks/... ./internal/bootstrap/... ./internal/par/... ./internal/nt/... ./internal/polyir/... ./internal/serve/... ./internal/fheclient/... ./internal/vm/... ./internal/obs/... ./internal/batch/... ./internal/cluster/...

# Loopback smoke test of the serving layer: start an in-process daemon,
# register a session through the real client, infer, decrypt, compare to
# the cleartext reference.
serve-smoke:
	$(GO) test -count=1 -run 'TestLoopbackInference' ./internal/serve/ -v

# Observability smoke test against the real binary: boot aced, run one
# traced inference through the client library, strict-parse /metrics
# against the exposition grammar, check /v1/profilez accounts for the
# evaluation time, and verify one trace id strings the daemon's log
# events together across the request's whole life.
obs-smoke:
	$(GO) test -count=1 -run 'TestObsSmokeAced|TestMetricsExposition|TestProfilezTracksEval' ./internal/serve/ -v

# Chaos suite: deterministic fault injection (internal/fault) drives the
# daemon through worker panics, dropped responses and queue-full storms
# under the race detector. Seeds are fixed inside the tests, so failures
# replay exactly; -count=1 defeats the test cache because fault points
# are process-global state.
chaos:
	$(GO) test -count=1 -race -run 'Chaos' ./internal/serve/ -v
	$(GO) test -count=1 -race ./internal/fault/
	$(GO) test -count=1 -race ./internal/batch/

# Durability suite: the crash-restart e2e kills a real aced daemon with
# SIGKILL mid-inference and proves the restarted one finishes the job
# bit-identically from its checkpoint; the fuzz smokes feed corrupt
# journal and snapshot bytes to the replay/restore paths. All raced.
durability:
	$(GO) test -count=1 -race -run 'TestCrashRestart|TestRestart|TestRecovery' ./internal/serve/ -v -timeout 600s
	$(GO) test -count=1 -race -run '^$$' -fuzz FuzzStoreReplay -fuzztime 10s ./internal/store/
	$(GO) test -count=1 -race -run '^$$' -fuzz FuzzSnapshotRestore -fuzztime 10s ./internal/vm/

# Cluster chaos suite: the sharded-serving proofs, all raced. The
# subprocess e2e boots three real aced shards plus an acerouter,
# SIGKILLs the session's primary shard mid-inference, and requires the
# failover answer — served by the replica from the replicated key
# bundle — to be bit-identical with zero client re-registration. The
# in-process tests drive the same ring/shipper/router machinery through
# the router.forward.err and replica.ship.torn injection points.
cluster-chaos:
	$(GO) test -count=1 -race -run 'TestChaos|TestRouter|TestShipper' ./internal/cluster/ -v -timeout 600s

# Live-membership chaos suite, all raced. Subprocess e2e against the
# real binaries: a cold shard joins a loaded cluster through the
# router's /v1/cluster/join and serves traffic with zero client
# re-registration; a drained shard hands off every session and journal
# entry, answers its in-flight requests bit-identically, then exits
# zero on its own; a straggler shard (-instr-delay) is hedged around so
# its p99 stays under 2x the healthy baseline with ace_hedge_wins > 0.
# The in-process tests cover the epoch state machine, the membership
# wire fuzzing seeds, the handoff readyz gate and the client's
# membership refetch.
cluster-membership-chaos:
	$(GO) test -count=1 -race -run 'TestChaosMembership|TestMembership|TestLatencyEstimator' ./internal/cluster/ -v -timeout 600s
	$(GO) test -count=1 -race -run 'TestRefreshMembership|TestAPIErrorCarriesEpoch' ./internal/fheclient/ -v
	$(GO) test -count=1 -race -run '^$$' -fuzz FuzzMembershipWire -fuzztime 10s ./internal/cluster/

# Calibrated-cost-model autotune: microbenchmark the runtime, enumerate
# compilation plans (conv split x bootstrap placement) for the reduced
# ResNet-20 under the calibrated model, then run the hand-picked naive
# default and the chosen plan for real. Fails if the chosen plan does
# not beat the default in measured wall-clock or if any per-category
# prediction (Conv / Bootstrap / ReLU) strays past 2x of measurement.
# Writes BENCH_autotune.json.
autotune:
	$(GO) run ./cmd/acebench -autotune

verify:
	$(MAKE) vet
	$(MAKE) race
	$(MAKE) chaos
	$(MAKE) durability
	$(MAKE) cluster-chaos
	$(MAKE) cluster-membership-chaos
	$(MAKE) obs-smoke
	$(MAKE) autotune
	$(GO) test ./...

# Microbenchmarks for the limb-parallel engine and buffer pooling
# (BENCH_parallel.json records reference numbers).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkNTT$$|BenchmarkKeySwitch$$|BenchmarkHoistedRotations$$' -benchmem .

# Fused-kernel benchmarks (BENCH_fusion.json records reference numbers):
# the four benchmarks the fused key-switch path and lazy-reduction NTT
# move. -count=3 because single runs on shared machines are ±10% noisy;
# take the best run per benchmark when comparing.
bench-fusion:
	$(GO) test -run '^$$' -count=3 -timeout 1800s \
		-bench 'BenchmarkNTT$$|BenchmarkKeySwitch$$|BenchmarkHoistedRotations$$|BenchmarkRuntimeBootstrap$$' -benchmem .

# Cross-request batching benchmark (BENCH_batch.json records reference
# numbers): boot a real aced serving the reduced ResNet-20 at logN 12
# (stride 8), drive 8 concurrent clients through acebench -load, batched
# vs unbatched, best of 3 runs per mode. SLOW: one encrypted inference
# takes ~12.5 minutes on a single-core box, so the full run exceeds an
# hour. See scripts/bench_batch.sh for tunables.
bench-batch:
	bash scripts/bench_batch.sh
