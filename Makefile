GO ?= go

.PHONY: build test verify race bench serve-smoke chaos durability

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-test the concurrency-bearing packages: the ring engine, the CKKS
# evaluator and the bootstrapper fan limb work out across the internal/par
# worker pool, and the serving layer runs a worker pool of evaluators over
# a shared session cache. ACE_WORKERS=8 forces parallel scheduling even on
# single-core CI machines.
race:
	ACE_WORKERS=8 $(GO) test -race ./internal/ring/... ./internal/ckks/... ./internal/bootstrap/... ./internal/par/... ./internal/serve/... ./internal/fheclient/... ./internal/vm/...

# Loopback smoke test of the serving layer: start an in-process daemon,
# register a session through the real client, infer, decrypt, compare to
# the cleartext reference.
serve-smoke:
	$(GO) test -count=1 -run 'TestLoopbackInference' ./internal/serve/ -v

# Chaos suite: deterministic fault injection (internal/fault) drives the
# daemon through worker panics, dropped responses and queue-full storms
# under the race detector. Seeds are fixed inside the tests, so failures
# replay exactly; -count=1 defeats the test cache because fault points
# are process-global state.
chaos:
	$(GO) test -count=1 -race -run 'Chaos' ./internal/serve/ -v
	$(GO) test -count=1 -race ./internal/fault/

# Durability suite: the crash-restart e2e kills a real aced daemon with
# SIGKILL mid-inference and proves the restarted one finishes the job
# bit-identically from its checkpoint; the fuzz smokes feed corrupt
# journal and snapshot bytes to the replay/restore paths. All raced.
durability:
	$(GO) test -count=1 -race -run 'TestCrashRestart|TestRestart|TestRecovery' ./internal/serve/ -v -timeout 600s
	$(GO) test -count=1 -race -run '^$$' -fuzz FuzzStoreReplay -fuzztime 10s ./internal/store/
	$(GO) test -count=1 -race -run '^$$' -fuzz FuzzSnapshotRestore -fuzztime 10s ./internal/vm/

verify:
	$(GO) vet ./...
	$(MAKE) race
	$(MAKE) chaos
	$(MAKE) durability
	$(GO) test ./...

# Microbenchmarks for the limb-parallel engine and buffer pooling
# (BENCH_parallel.json records reference numbers).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkNTT$$|BenchmarkKeySwitch$$|BenchmarkHoistedRotations$$' -benchmem .
