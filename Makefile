GO ?= go

.PHONY: build test verify race bench

build:
	$(GO) build ./...

test:
	$(GO) test ./...

# Race-test the concurrency-bearing packages: the ring engine, the CKKS
# evaluator and the bootstrapper all fan limb work out across the
# internal/par worker pool. ACE_WORKERS=8 forces parallel scheduling even
# on single-core CI machines.
race:
	ACE_WORKERS=8 $(GO) test -race ./internal/ring/... ./internal/ckks/... ./internal/bootstrap/... ./internal/par/...

verify:
	$(GO) vet ./...
	$(MAKE) race
	$(GO) test ./...

# Microbenchmarks for the limb-parallel engine and buffer pooling
# (BENCH_parallel.json records reference numbers).
bench:
	$(GO) test -run '^$$' -bench 'BenchmarkNTT$$|BenchmarkKeySwitch$$|BenchmarkHoistedRotations$$' -benchmem .
