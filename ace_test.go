package ace

import (
	"math"
	"strings"
	"testing"

	"antace/internal/onnx"
	"antace/internal/tensor"
)

func TestFacadeEndToEnd(t *testing.T) {
	model, err := onnx.BuildLinear(32, 5, 13)
	if err != nil {
		t.Fatal(err)
	}
	prog, err := Compile(model, TestProfile())
	if err != nil {
		t.Fatal(err)
	}
	rt, err := NewRuntime(prog)
	if err != nil {
		t.Fatal(err)
	}
	image := tensor.New(1, 32)
	for i := range image.Data {
		image.Data[i] = math.Sin(float64(i)) / 2
	}
	enc, err := rt.Infer(image)
	if err != nil {
		t.Fatal(err)
	}
	plain, err := InferPlain(prog, image)
	if err != nil {
		t.Fatal(err)
	}
	sim, err := InferSim(prog, image)
	if err != nil {
		t.Fatal(err)
	}
	for i := range plain.Data {
		if math.Abs(enc.Data[i]-plain.Data[i]) > 1e-3 {
			t.Fatalf("output %d: encrypted %g vs plaintext %g", i, enc.Data[i], plain.Data[i])
		}
		if math.Abs(sim.Data[i]-plain.Data[i]) > 1e-9 {
			t.Fatalf("output %d: simulator %g vs plaintext %g", i, sim.Data[i], plain.Data[i])
		}
	}
	if rt.KeyCount() == 0 {
		t.Fatal("no rotation keys generated")
	}
	var sb strings.Builder
	Describe(prog, &sb)
	if !strings.Contains(sb.String(), "logN") {
		t.Fatal("Describe output incomplete")
	}
}

func TestFacadeONNXFileRoundTrip(t *testing.T) {
	model, _ := onnx.BuildSmallCNN(onnx.SmallCNNConfig{})
	path := t.TempDir() + "/m.onnx"
	if err := SaveONNX(model, path); err != nil {
		t.Fatal(err)
	}
	back, err := LoadONNX(path)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Compile(back, TestProfile()); err != nil {
		t.Fatal(err)
	}
}

func TestPaperProfileSelectsSecureParameters(t *testing.T) {
	if testing.Short() {
		t.Skip("compiles at paper scale")
	}
	model, err := onnx.BuildResNet(onnx.ResNetConfig{Depth: 20})
	if err != nil {
		t.Fatal(err)
	}
	cfg := PaperProfile()
	cfg.SkipPoly = true
	prog, err := Compile(model, cfg)
	if err != nil {
		t.Fatal(err)
	}
	lit := prog.CKKS.Literal
	if lit.LogN != 16 || lit.LogQ[0] != 60 || lit.LogScale != 56 {
		t.Fatalf("Table 10 mismatch: logN=%d logQ0=%d logD=%d", lit.LogN, lit.LogQ[0], lit.LogScale)
	}
}
